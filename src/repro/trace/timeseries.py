"""Time-series instrumentation: cwnd / RTT / queue evolution.

The paper reasons about mechanisms -- slow-start overshoot, window
growth into deep buffers, coupled controllers shifting load -- that
only show up in *trajectories*, not end-of-run aggregates.  A
:class:`TimeSeriesProbe` samples arbitrary getters on a fixed period
and the result renders as CSV or a quick ASCII sparkline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Event, Simulator


@dataclass
class Series:
    """One sampled quantity over simulated time."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    # An empty series has no extrema or mean: every statistic returns
    # NaN (previously maximum/minimum said 0.0 while derived stats went
    # NaN, and a legitimate all-zero series was indistinguishable from
    # no data).

    def maximum(self) -> float:
        return max(self.values) if self.values else float("nan")

    def minimum(self) -> float:
        return min(self.values) if self.values else float("nan")

    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return sum(self.values) / len(self.values)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of the sampled values,
        linearly interpolated between order statistics; NaN if empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return float("nan")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction

    def to_rows(self) -> List[Tuple[float, float]]:
        """The series as ``(time, value)`` rows, CSV-ready."""
        return list(zip(self.times, self.values))

    def at(self, time: float) -> Optional[float]:
        """Last sampled value at or before ``time`` (step semantics)."""
        result = None
        for sample_time, value in zip(self.times, self.values):
            if sample_time > time:
                break
            result = value
        return result


class TimeSeriesProbe:
    """Samples named getters every ``period`` seconds of simulated time.

    Getters are zero-argument callables; exceptions are not caught --
    a getter must stay valid for the probe's lifetime (use
    ``lambda: endpoint.cwnd if endpoint else 0``-style guards if not).
    """

    def __init__(self, sim: Simulator, period: float = 0.1) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.period = period
        self.series: Dict[str, Series] = {}
        self._getters: Dict[str, Callable[[], float]] = {}
        self._timer: Optional[Event] = None
        self._running = False

    def track(self, name: str, getter: Callable[[], float]
              ) -> "TimeSeriesProbe":
        """Register a quantity; chainable."""
        if name in self._getters:
            raise ValueError(f"already tracking {name!r}")
        self._getters[name] = getter
        self.series[name] = Series(name)
        return self

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._sample()

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        trace = self.sim.trace  # probes share the protocol timeline
        for name, getter in self._getters.items():
            value = float(getter())
            self.series[name].append(now, value)
            if trace.enabled:
                trace.emit(now, "probe.sample", name=name, value=value)
        self._timer = self.sim.schedule(self.period, self._sample,
                                        name="probe.sample")

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_rows(self) -> Tuple[List[str], List[List[float]]]:
        """(headers, rows) with one row per sample instant."""
        names = sorted(self.series)
        headers = ["time"] + names
        length = min((len(self.series[name]) for name in names),
                     default=0)
        rows = []
        for index in range(length):
            time = self.series[names[0]].times[index] if names else 0.0
            rows.append([time] + [self.series[name].values[index]
                                  for name in names])
        return headers, rows

    def sparkline(self, name: str, width: int = 60) -> str:
        """A one-line ASCII rendering of one series."""
        series = self.series[name]
        if not series.values:
            return f"{name}: (no samples)"
        glyphs = " .:-=+*#%@"
        low, high = series.minimum(), series.maximum()
        span = (high - low) or 1.0
        step = max(len(series.values) // width, 1)
        chars = []
        for index in range(0, len(series.values), step):
            value = series.values[index]
            level = int((value - low) / span * (len(glyphs) - 1))
            chars.append(glyphs[level])
        return (f"{name}: [{''.join(chars[:width])}] "
                f"min={low:.3g} max={high:.3g}")

"""MPTCP-level trace analysis (an mptcptrace equivalent).

tcptrace sees subflows; the MPTCP story lives in the *data sequence
numbers* that ride in the DSS options.  This analyzer reconstructs the
connection-level view purely from a client-side capture:

* per-packet **out-of-order delay**: a packet's wait between its
  arrival and the instant the connection-level cumulative point passes
  it -- computable from (arrival time, dsn, length) alone, and
  cross-validated against the receive buffer's exact accounting in the
  test suite;
* per-path byte shares and DSN progress over time (who carried which
  part of the stream when);
* connection-level goodput from first to last distinct DSN.

Being capture-only, it works on stored traces (see
:mod:`repro.experiments.storage`) exactly like the real tool worked on
pcaps.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.connection import path_name_of
from repro.trace.capture import CaptureLevel, PacketCapture


@dataclass
class MptcpTraceAnalysis:
    """Connection-level metrics reconstructed from DSS options."""

    #: Per delivered range: reorder delay in seconds (0.0 = in order).
    ofo_delays: List[float] = field(default_factory=list)
    #: Unique stream bytes first carried by each client path.
    bytes_by_path: Dict[str, int] = field(default_factory=dict)
    #: Duplicate payload bytes (reinjection / redundant scheduling).
    duplicate_bytes: int = 0
    first_data_time: Optional[float] = None
    last_data_time: Optional[float] = None
    stream_bytes: int = 0

    def in_order_fraction(self) -> float:
        if not self.ofo_delays:
            return 1.0
        in_order = sum(1 for delay in self.ofo_delays if delay <= 1e-9)
        return in_order / len(self.ofo_delays)

    def cellular_fraction(self,
                          wifi_paths: tuple = ("wifi", "public-wifi"),
                          ) -> float:
        total = sum(self.bytes_by_path.values())
        if total == 0:
            return 0.0
        cellular = sum(nbytes for path, nbytes
                       in self.bytes_by_path.items()
                       if path not in wifi_paths)
        return cellular / total

    def goodput_bps(self) -> float:
        if (self.first_data_time is None or self.last_data_time is None
                or self.last_data_time <= self.first_data_time):
            return 0.0
        duration = self.last_data_time - self.first_data_time
        return self.stream_bytes * 8.0 / duration


def analyze_mptcp(capture: PacketCapture) -> MptcpTraceAnalysis:
    """Reconstruct the connection-level view from a client capture.

    Only received data packets carrying DSS mappings participate; the
    cumulative point replays exactly the receive buffer's behaviour
    (duplicates trimmed, holes filled when their packet arrives).
    """
    level = getattr(capture, "level", None)
    if level is not None and level is not CaptureLevel.FULL:
        raise ValueError(
            "analyze_mptcp needs DSS options; capture level "
            f"{level.value!r} does not record them (use 'full')")
    analysis = MptcpTraceAnalysis()
    # (arrival_time, order, dsn_start, dsn_end, path)
    arrivals: List[Tuple[float, int, int, int, str]] = []
    for order, record in enumerate(capture.records):
        if (record.direction != "recv" or record.payload_len == 0
                or record.dsn is None):
            continue
        arrivals.append((record.time, order, record.dsn,
                         record.dsn + record.dss_len,
                         path_name_of(record.dst)))
    if not arrivals:
        return analysis
    arrivals.sort()
    analysis.first_data_time = arrivals[0][0]
    analysis.last_data_time = arrivals[-1][0]

    covered_end = 0  # connection-level cumulative point
    #: Held ranges: heap of (dsn_start, dsn_end, arrival_time, path).
    held: List[Tuple[int, int, float, str]] = []
    for time, _, start, end, path in arrivals:
        # Trim against what is already contiguous.
        new_start = max(start, covered_end)
        if new_start >= end:
            analysis.duplicate_bytes += end - start
            continue
        analysis.duplicate_bytes += new_start - start
        heapq.heappush(held, (new_start, end, time, path))
        # Drain everything that has become contiguous.
        while held and held[0][0] <= covered_end:
            range_start, range_end, arrival, range_path = \
                heapq.heappop(held)
            if range_end <= covered_end:
                analysis.duplicate_bytes += range_end - range_start
                continue
            delivered_start = max(range_start, covered_end)
            nbytes = range_end - delivered_start
            covered_end = range_end
            analysis.ofo_delays.append(max(time - arrival, 0.0))
            analysis.bytes_by_path[range_path] = (
                analysis.bytes_by_path.get(range_path, 0) + nbytes)
            analysis.stream_bytes += nbytes
    return analysis

"""Human-readable trace dumps, tcpdump/tcptrace style.

For debugging simulations the way the authors debugged their testbed:
:func:`dump` renders a capture one line per packet in a tcpdump-like
format (including the MPTCP option summary), and :func:`flow_summary`
prints the per-flow block tcptrace would.
"""

from __future__ import annotations

from typing import List, Optional

from repro.trace.analyzer import FlowAnalysis
from repro.trace.capture import PacketCapture, PacketRecord


def _flags_text(record: PacketRecord) -> str:
    letters = ""
    if record.syn:
        letters += "S"
    if record.fin:
        letters += "F"
    if record.ack_flag:
        letters += "."
    return letters or "-"


def _mptcp_text(record: PacketRecord) -> str:
    parts: List[str] = []
    if record.mp_capable:
        parts.append("capable")
    if record.mp_join:
        parts.append("join")
    if record.dsn is not None:
        parts.append(f"dsn {record.dsn}:{record.dsn + record.dss_len}")
    if record.data_ack is not None:
        parts.append(f"dack {record.data_ack}")
    return f" <mptcp {' '.join(parts)}>" if parts else ""


def format_record(record: PacketRecord) -> str:
    """One tcpdump-style line for a captured packet."""
    direction = ">" if record.direction == "send" else "<"
    return (f"{record.time:12.6f} {direction} "
            f"{record.src}:{record.src_port} -> "
            f"{record.dst}:{record.dst_port}: "
            f"Flags [{_flags_text(record)}], "
            f"seq {record.seq}:{record.seq + record.payload_len}, "
            f"ack {record.ack}, win {record.window}, "
            f"length {record.payload_len}"
            f"{_mptcp_text(record)}")


def dump(capture: PacketCapture, limit: Optional[int] = None,
         data_only: bool = False) -> str:
    """Render a capture as text; ``limit`` caps the line count."""
    lines: List[str] = []
    for record in capture.records:
        if data_only and record.payload_len == 0:
            continue
        lines.append(format_record(record))
        if limit is not None and len(lines) >= limit:
            lines.append(f"... ({len(capture.records)} records total)")
            break
    return "\n".join(lines)


def flow_summary(analysis: FlowAnalysis) -> str:
    """A tcptrace-style per-flow summary block."""
    local = f"{analysis.local[0]}:{analysis.local[1]}"
    remote = f"{analysis.remote[0]}:{analysis.remote[1]}"
    lines = [
        f"flow {local} -> {remote}",
        f"  data packets sent:       {analysis.data_packets_sent}",
        f"  retransmitted packets:   {analysis.retransmitted_packets}",
        f"  loss rate:               {analysis.loss_rate:.3%}",
        f"  unique payload bytes:    {analysis.payload_bytes}",
        f"  RTT samples:             {len(analysis.rtt_samples)}",
    ]
    if analysis.rtt_samples:
        lines.append(
            "  RTT min/avg/max (ms):    "
            f"{min(analysis.rtt_samples) * 1000:.1f} / "
            f"{analysis.mean_rtt * 1000:.1f} / "
            f"{max(analysis.rtt_samples) * 1000:.1f}")
    if analysis.handshake_rtt is not None:
        lines.append("  handshake RTT (ms):      "
                     f"{analysis.handshake_rtt * 1000:.1f}")
    lines.append(f"  duration (s):            {analysis.duration:.3f}")
    lines.append("  throughput:              "
                 f"{analysis.throughput_bps / 1e6:.2f} Mbit/s")
    return "\n".join(lines)

"""Connection-level metric roll-ups from captures.

Joins the per-flow tcptrace analyses into the quantities the paper's
tables and figures actually plot:

* download time (first SYN from the client to the last data packet it
  receives -- Section 3.3's definition, computed from the client-side
  capture);
* the fraction of traffic carried by the cellular path (Figures 3, 5,
  7, 10), computed from data bytes arriving on each client interface;
* per-path loss rates and RTT sample sets (Tables 2-6, Figure 12),
  computed from the server-side capture, since loss and RTT are
  sender-side observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.connection import path_name_of
from repro.trace.analyzer import FlowAnalysis, analyze_flow, flows_in
from repro.trace.capture import CaptureLevel, PacketCapture


def download_time_from_capture(capture: PacketCapture) -> Optional[float]:
    """First SYN sent to last data packet received, from a client capture."""
    if getattr(capture, "level", None) is CaptureLevel.METRICS_ONLY:
        summary = capture.summary
        first_syn = summary.first_syn_sent
        last_data = summary.last_data_recv
        if first_syn is None or last_data is None:
            return None
        return last_data - first_syn
    first_syn = None
    last_data = None
    for record in capture.records:
        if (record.direction == "send" and record.syn
                and not record.ack_flag):
            if first_syn is None:
                first_syn = record.time
        elif record.direction == "recv" and record.payload_len > 0:
            last_data = record.time
    if first_syn is None or last_data is None:
        return None
    return last_data - first_syn


def bytes_by_client_path(capture: PacketCapture) -> Dict[str, int]:
    """Data bytes received per client interface, keyed by path name."""
    shares: Dict[str, int] = {}
    if getattr(capture, "level", None) is CaptureLevel.METRICS_ONLY:
        for dst, nbytes in capture.summary.recv_bytes_by_dst.items():
            path = path_name_of(dst)
            shares[path] = shares.get(path, 0) + nbytes
        return shares
    for record in capture.records:
        if record.direction == "recv" and record.payload_len > 0:
            path = path_name_of(record.dst)
            shares[path] = shares.get(path, 0) + record.payload_len
    return shares


def cellular_fraction(capture: PacketCapture,
                      wifi_paths: tuple = ("wifi", "public-wifi")) -> float:
    """Fraction of received data bytes that arrived on cellular paths."""
    shares = bytes_by_client_path(capture)
    total = sum(shares.values())
    if total == 0:
        return 0.0
    cellular = sum(nbytes for path, nbytes in shares.items()
                   if path not in wifi_paths)
    return cellular / total


@dataclass
class ConnectionMetrics:
    """Everything one measurement contributes to the paper's plots."""

    download_time: Optional[float] = None
    bytes_received: int = 0
    cellular_fraction: float = 0.0
    #: Per path name: server-side flow analysis (loss, RTT samples).
    per_path: Dict[str, FlowAnalysis] = field(default_factory=dict)
    #: Out-of-order delays in seconds (client receive buffer), if MPTCP.
    ofo_delays: List[float] = field(default_factory=list)
    #: RFC 6824 S3.6 fallback status of an MPTCP run: "none" (stayed
    #: multipath), "plain" or "infinite"; ``None`` for single-path runs.
    fallback: Optional[str] = None

    def rtt_samples(self, path: str) -> List[float]:
        analysis = self.per_path.get(path)
        return analysis.rtt_samples if analysis is not None else []

    def loss_rate(self, path: str) -> float:
        analysis = self.per_path.get(path)
        return analysis.loss_rate if analysis is not None else 0.0

    def mean_rtt(self, path: str) -> float:
        analysis = self.per_path.get(path)
        return analysis.mean_rtt if analysis is not None else 0.0


def connection_metrics(server_capture: PacketCapture,
                       client_capture: PacketCapture,
                       ofo_delays: Optional[List[float]] = None,
                       ) -> ConnectionMetrics:
    """Assemble a :class:`ConnectionMetrics` from both captures.

    The download direction is server -> client; per-path analyses merge
    all subflows that terminate on the same client interface (the
    4-path scenarios have two subflows per interface).
    """
    metrics = ConnectionMetrics(
        download_time=download_time_from_capture(client_capture),
        cellular_fraction=cellular_fraction(client_capture),
        ofo_delays=list(ofo_delays or []),
    )
    shares = bytes_by_client_path(client_capture)
    metrics.bytes_received = sum(shares.values())
    if getattr(server_capture, "level",
               None) is CaptureLevel.METRICS_ONLY:
        # Flow analyses were streamed during the run; same flows, same
        # order, same contents as batch analysis of a full capture.
        analyses = server_capture.flow_analyses(local_prefix="server.")
    else:
        analyses = {}
        for key, records in flows_in(server_capture).items():
            senders = {record.src for record in records
                       if record.direction == "send"
                       and record.payload_len > 0}
            server_addrs = {addr for addr in senders
                            if addr.startswith("server.")}
            if not server_addrs:
                continue
            analyses[key] = analyze_flow(records, sorted(server_addrs)[0])
    for key, analysis in analyses.items():
        client_end = (key[0] if key[0][0].startswith("client.")
                      else key[1])
        path = path_name_of(client_end[0])
        existing = metrics.per_path.get(path)
        if existing is None:
            metrics.per_path[path] = analysis
        else:
            # Merge subflows sharing an interface (4-path runs).
            existing.data_packets_sent += analysis.data_packets_sent
            existing.retransmitted_packets += analysis.retransmitted_packets
            existing.payload_bytes += analysis.payload_bytes
            existing.rtt_samples.extend(analysis.rtt_samples)
            if analysis.last_packet_time is not None:
                if (existing.last_packet_time is None
                        or analysis.last_packet_time
                        > existing.last_packet_time):
                    existing.last_packet_time = analysis.last_packet_time
            if analysis.first_packet_time is not None:
                if (existing.first_packet_time is None
                        or analysis.first_packet_time
                        < existing.first_packet_time):
                    existing.first_packet_time = analysis.first_packet_time
    return metrics

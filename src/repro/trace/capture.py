"""tcpdump, simulated: per-host packet capture.

A :class:`PacketCapture` registers a hook on a host and appends one
flat :class:`PacketRecord` per packet observed in either direction.
Records are plain slotted objects (a capture of a 32 MB transfer holds
tens of thousands), and carry everything the analyzer needs: header
fields, SACK presence, and the MPTCP DSS numbers.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.netsim.host import Host
from repro.netsim.packet import Packet

#: Canonical flow key: ((addr, port), (addr, port)) with the two
#: endpoints sorted, so both directions map to the same key.
FlowKey = Tuple[Tuple[str, int], Tuple[str, int]]


class PacketRecord:
    """One captured packet, flattened for analysis."""

    __slots__ = ("time", "direction", "src", "dst", "src_port", "dst_port",
                 "seq", "ack", "payload_len", "syn", "ack_flag", "fin",
                 "window", "dsn", "dss_len", "data_ack", "packet_id",
                 "mp_capable", "mp_join")

    def __init__(self, time: float, direction: str, packet: Packet) -> None:
        segment = packet.segment
        self.time = time
        self.direction = direction  # "send" or "recv"
        self.src = packet.src
        self.dst = packet.dst
        self.src_port = segment.src_port
        self.dst_port = segment.dst_port
        self.seq = segment.seq
        self.ack = segment.ack
        self.payload_len = segment.payload_len
        self.syn = segment.flags.syn
        self.ack_flag = segment.flags.ack
        self.fin = segment.flags.fin
        self.window = segment.window
        self.packet_id = packet.packet_id
        options = segment.options
        if options is not None and options.dss is not None:
            self.dsn: Optional[int] = options.dss.dsn
            self.dss_len: int = options.dss.length
        else:
            self.dsn = None
            self.dss_len = 0
        self.data_ack = options.data_ack if options is not None else None
        self.mp_capable = options.mp_capable if options is not None \
            else False
        self.mp_join = options.mp_join if options is not None else False

    @property
    def end_seq(self) -> int:
        return self.seq + self.payload_len + int(self.syn) + int(self.fin)

    @property
    def flow_key(self) -> FlowKey:
        ends = sorted([(self.src, self.src_port), (self.dst, self.dst_port)])
        return (ends[0], ends[1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PacketRecord {self.direction} t={self.time:.6f} "
                f"{self.src}:{self.src_port}->{self.dst}:{self.dst_port} "
                f"seq={self.seq} len={self.payload_len}>")


class PacketCapture:
    """Attach to a host; collect every packet it sends or receives."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.records: List[PacketRecord] = []
        host.add_capture_hook(self._hook)

    def _hook(self, direction: str, time: float, packet: Packet) -> None:
        self.records.append(PacketRecord(time, direction, packet))

    def detach(self) -> None:
        """Stop capturing (leaves collected records intact)."""
        self.host.remove_capture_hook(self._hook)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self.records)

    def sent(self) -> Iterator[PacketRecord]:
        return (record for record in self.records
                if record.direction == "send")

    def received(self) -> Iterator[PacketRecord]:
        return (record for record in self.records
                if record.direction == "recv")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PacketCapture {self.host.name} n={len(self.records)}>"

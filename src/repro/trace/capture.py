"""tcpdump, simulated: per-host packet capture, at three fidelities.

A :class:`PacketCapture` registers a hook on a host and observes every
packet it sends or receives.  What it keeps depends on its
:class:`CaptureLevel`:

* ``FULL`` -- one flat :class:`PacketRecord` per packet, including the
  MPTCP DSS numbers.  Needed by :mod:`repro.trace.mptcptrace` and
  :mod:`repro.trace.dump`.
* ``HEADERS`` -- one :class:`PacketRecord` per packet, but without
  inspecting TCP options (``dsn``/``data_ack``/``mp_*`` read as
  absent).  Supports every tcptrace-style analysis and metric roll-up,
  just not DSS-level tooling.
* ``METRICS_ONLY`` -- no records at all.  The hook streams each packet
  through per-flow analysis state (an incremental replica of
  :func:`repro.trace.analyzer.analyze_flow`) plus a small host summary,
  so a campaign run materializes zero per-packet objects.  The streamed
  :meth:`flow_analyses` and :attr:`summary` are, by construction,
  identical to what batch analysis of a full capture would produce --
  the determinism guard test asserts CSV byte-equality.

Records are plain slotted objects (a capture of a 32 MB transfer holds
tens of thousands), and carry everything the analyzer needs: header
fields, SACK presence, and the MPTCP DSS numbers.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.netsim.host import Host
from repro.netsim.packet import Packet

#: Canonical flow key: ((addr, port), (addr, port)) with the two
#: endpoints sorted, so both directions map to the same key.
FlowKey = Tuple[Tuple[str, int], Tuple[str, int]]


class CaptureLevel(enum.Enum):
    """How much a :class:`PacketCapture` retains per packet."""

    FULL = "full"
    HEADERS = "headers"
    METRICS_ONLY = "metrics-only"

    @classmethod
    def coerce(cls, value: Union["CaptureLevel", str]) -> "CaptureLevel":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            choices = ", ".join(level.value for level in cls)
            raise ValueError(
                f"unknown capture level {value!r} (choose from {choices})"
            ) from None


class PacketRecord:
    """One captured packet, flattened for analysis."""

    __slots__ = ("time", "direction", "src", "dst", "src_port", "dst_port",
                 "seq", "ack", "payload_len", "syn", "ack_flag", "fin",
                 "window", "dsn", "dss_len", "data_ack", "packet_id",
                 "mp_capable", "mp_join")

    def __init__(self, time: float, direction: str, packet: Packet,
                 with_options: bool = True) -> None:
        segment = packet.segment
        self.time = time
        self.direction = direction  # "send" or "recv"
        self.src = packet.src
        self.dst = packet.dst
        self.src_port = segment.src_port
        self.dst_port = segment.dst_port
        self.seq = segment.seq
        self.ack = segment.ack
        self.payload_len = segment.payload_len
        self.syn = segment.flags.syn
        self.ack_flag = segment.flags.ack
        self.fin = segment.flags.fin
        self.window = segment.window
        self.packet_id = packet.packet_id
        options = segment.options if with_options else None
        if options is not None and options.dss is not None:
            self.dsn: Optional[int] = options.dss.dsn
            self.dss_len: int = options.dss.length
        else:
            self.dsn = None
            self.dss_len = 0
        self.data_ack = options.data_ack if options is not None else None
        self.mp_capable = options.mp_capable if options is not None \
            else False
        self.mp_join = options.mp_join if options is not None else False

    @property
    def end_seq(self) -> int:
        return self.seq + self.payload_len + int(self.syn) + int(self.fin)

    @property
    def flow_key(self) -> FlowKey:
        ends = sorted([(self.src, self.src_port), (self.dst, self.dst_port)])
        return (ends[0], ends[1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PacketRecord {self.direction} t={self.time:.6f} "
                f"{self.src}:{self.src_port}->{self.dst}:{self.dst_port} "
                f"seq={self.seq} len={self.payload_len}>")


class CaptureSummary:
    """Host-level aggregates a metrics-only capture streams.

    Mirrors what :func:`repro.trace.metrics.download_time_from_capture`
    and :func:`~repro.trace.metrics.bytes_by_client_path` extract from
    a full client-side capture.
    """

    __slots__ = ("first_syn_sent", "last_data_recv", "recv_bytes_by_dst")

    def __init__(self) -> None:
        self.first_syn_sent: Optional[float] = None
        self.last_data_recv: Optional[float] = None
        #: Data bytes received per destination (local) address.
        self.recv_bytes_by_dst: Dict[str, int] = {}


class _FlowStream:
    """Incremental, per-flow replica of ``analyze_flow``.

    Consumes packets one at a time and reproduces, field for field, the
    :class:`~repro.trace.analyzer.FlowAnalysis` that the batch analyzer
    would compute from this flow's full record list.  The flow's
    *local* (sending) endpoint is fixed by the first outgoing packet,
    which on a sender-side capture is always the analyzed host.
    """

    __slots__ = ("local", "remote", "data_packets_sent",
                 "retransmitted_packets", "payload_bytes",
                 "first_packet_time", "last_packet_time", "syn_time",
                 "handshake_rtt", "started", "has_data",
                 "sent_starts", "rexmitted_seqs", "pending",
                 "samples_by_seq")

    def __init__(self) -> None:
        self.local: Tuple[str, int] = ("", 0)
        self.remote: Tuple[str, int] = ("", 0)
        self.data_packets_sent = 0
        self.retransmitted_packets = 0
        self.payload_bytes = 0
        self.first_packet_time: Optional[float] = None
        self.last_packet_time: Optional[float] = None
        self.syn_time: Optional[float] = None
        self.handshake_rtt: Optional[float] = None
        self.started = False       # first outgoing packet seen
        self.has_data = False      # any outgoing packet with payload
        self.sent_starts: Set[int] = set()
        self.rexmitted_seqs: Set[int] = set()
        #: Unmatched first transmissions awaiting a covering ACK:
        #: seq -> (end_seq, send_time).
        self.pending: Dict[int, Tuple[int, float]] = {}
        self.samples_by_seq: Dict[int, float] = {}

    def on_send(self, time: float, src: str, src_port: int,
                dst: str, dst_port: int, segment) -> None:
        if not self.started:
            self.started = True
            self.local = (src, src_port)
            self.remote = (dst, dst_port)
            self.first_packet_time = time
        self.last_packet_time = time
        flags = segment.flags
        if flags.syn and not flags.ack:
            self.syn_time = time
        payload_len = segment.payload_len
        if payload_len > 0:
            self.has_data = True
            self.data_packets_sent += 1
            seq = segment.seq
            if seq in self.sent_starts:
                self.retransmitted_packets += 1
                self.rexmitted_seqs.add(seq)
                self.pending.pop(seq, None)
                self.samples_by_seq.pop(seq, None)
            else:
                self.sent_starts.add(seq)
                self.payload_bytes += payload_len
                end_seq = (seq + payload_len + int(flags.syn)
                           + int(flags.fin))
                self.pending[seq] = (end_seq, time)

    def on_recv(self, time: float, segment) -> None:
        if not self.started:
            return  # batch analyzer skips leading incoming packets too
        self.last_packet_time = time
        flags = segment.flags
        if (flags.syn and flags.ack and self.syn_time is not None
                and self.handshake_rtt is None):
            self.handshake_rtt = time - self.syn_time
        pending = self.pending
        if flags.ack and pending:
            ack = segment.ack
            # First transmissions enter `pending` at snd_nxt, so both
            # seq and end_seq are strictly increasing in insertion
            # order: the ACK-covered entries are a prefix, and the scan
            # can stop at the first uncovered one.  (The batch analyzer
            # scans the whole dict; same membership, same samples.)
            covered = []
            for seq, (end_seq, _) in pending.items():
                if ack < end_seq:
                    break
                covered.append(seq)
            samples = self.samples_by_seq
            for seq in covered:
                _, send_time = pending.pop(seq)
                samples[seq] = time - send_time

    def finalize(self):
        """A fresh :class:`FlowAnalysis` of the traffic streamed so far.

        Safe to call repeatedly (a new object each time, so downstream
        merging can mutate the result).
        """
        from repro.trace.analyzer import FlowAnalysis
        analysis = FlowAnalysis(local=self.local, remote=self.remote)
        analysis.data_packets_sent = self.data_packets_sent
        analysis.retransmitted_packets = self.retransmitted_packets
        analysis.payload_bytes = self.payload_bytes
        analysis.first_packet_time = self.first_packet_time
        analysis.last_packet_time = self.last_packet_time
        analysis.syn_time = self.syn_time
        analysis.handshake_rtt = self.handshake_rtt
        # Karn's rule, exactly as the batch analyzer applies it.
        rexmitted = self.rexmitted_seqs
        analysis.rtt_samples = [
            sample for seq, sample in sorted(self.samples_by_seq.items())
            if seq not in rexmitted]
        return analysis


class PacketCapture:
    """Attach to a host; observe every packet it sends or receives.

    ``level`` selects the fidelity (see :class:`CaptureLevel`; strings
    like ``"metrics-only"`` are accepted).  At ``METRICS_ONLY``,
    ``analyze_senders=False`` additionally skips per-flow sender-side
    analysis and keeps only the host summary -- the right setting for
    the client side of a measurement, where only download time and
    per-path byte shares are read.
    """

    def __init__(self, host: Host,
                 level: Union[CaptureLevel, str] = CaptureLevel.FULL,
                 analyze_senders: bool = True) -> None:
        self.host = host
        self.level = CaptureLevel.coerce(level)
        self.packets_seen = 0
        self.summary = CaptureSummary()
        self._records: Optional[List[PacketRecord]] = None
        self._flows: Dict[FlowKey, _FlowStream] = {}
        self._stream_by_tuple: Dict[Tuple[str, int, str, int],
                                    _FlowStream] = {}
        self._analyze_senders = analyze_senders
        if self.level is CaptureLevel.FULL:
            self._hook = self._hook_full
            self._records = []
        elif self.level is CaptureLevel.HEADERS:
            self._hook = self._hook_headers
            self._records = []
        else:
            self._hook = self._hook_metrics
        host.add_capture_hook(self._hook)

    # ------------------------------------------------------------------
    # Hooks (one per level; bound once at construction)
    # ------------------------------------------------------------------

    def _hook_full(self, direction: str, time: float,
                   packet: Packet) -> None:
        self.packets_seen += 1
        self._records.append(PacketRecord(time, direction, packet))

    def _hook_headers(self, direction: str, time: float,
                      packet: Packet) -> None:
        self.packets_seen += 1
        self._records.append(
            PacketRecord(time, direction, packet, with_options=False))

    def _hook_metrics(self, direction: str, time: float,
                      packet: Packet) -> None:
        self.packets_seen += 1
        segment = packet.segment
        summary = self.summary
        if direction == "recv":
            if segment.payload_len > 0:
                summary.last_data_recv = time
                shares = summary.recv_bytes_by_dst
                dst = packet.dst
                shares[dst] = shares.get(dst, 0) + segment.payload_len
        else:
            flags = segment.flags
            if (flags.syn and not flags.ack
                    and summary.first_syn_sent is None):
                summary.first_syn_sent = time
        if not self._analyze_senders:
            return
        stream = self._stream_for(packet, segment)
        if direction == "send":
            stream.on_send(time, packet.src, segment.src_port,
                           packet.dst, segment.dst_port, segment)
        else:
            stream.on_recv(time, segment)

    def _stream_for(self, packet: Packet, segment) -> _FlowStream:
        oriented = (packet.src, segment.src_port,
                    packet.dst, segment.dst_port)
        stream = self._stream_by_tuple.get(oriented)
        if stream is None:
            ends = sorted([(packet.src, segment.src_port),
                           (packet.dst, segment.dst_port)])
            key = (ends[0], ends[1])
            stream = self._flows.get(key)
            if stream is None:
                stream = _FlowStream()
                self._flows[key] = stream
            self._stream_by_tuple[oriented] = stream
        return stream

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def records(self) -> List[PacketRecord]:
        if self._records is None:
            raise RuntimeError(
                "capture level 'metrics-only' keeps no per-packet records; "
                "use level 'full' or 'headers' for record-based analysis")
        return self._records

    def flow_analyses(self, local_prefix: str = ""):
        """Streamed per-flow analyses (``METRICS_ONLY`` level only).

        Returns ``{flow_key: FlowAnalysis}`` for every flow in which the
        capturing host sent data, in first-packet order -- the same
        flows, order, and contents the batch analyzer yields from a
        full capture.  ``local_prefix`` filters on the local (sending)
        address, e.g. ``"server."``.
        """
        if self.level is not CaptureLevel.METRICS_ONLY:
            raise RuntimeError("flow_analyses() requires capture level "
                               "'metrics-only'; analyze records instead")
        analyses = {}
        for key, stream in self._flows.items():
            if not stream.has_data:
                continue  # batch analysis skips flows without sent data
            if local_prefix and not stream.local[0].startswith(local_prefix):
                continue
            analyses[key] = stream.finalize()
        return analyses

    def detach(self) -> None:
        """Stop capturing (leaves collected state intact)."""
        self.host.remove_capture_hook(self._hook)

    def __len__(self) -> int:
        return self.packets_seen

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self.records)

    def sent(self) -> Iterator[PacketRecord]:
        return (record for record in self.records
                if record.direction == "send")

    def received(self) -> Iterator[PacketRecord]:
        return (record for record in self.records
                if record.direction == "recv")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PacketCapture {self.host.name} level={self.level.value} "
                f"n={self.packets_seen}>")

"""Measurement layer: tcpdump and tcptrace, simulated.

The paper collects packet traces with tcpdump at *both* the server and
the client and analyzes them with tcptrace (Section 3.2).  We do the
same:

* :mod:`repro.trace.capture` -- :class:`PacketCapture` attaches to a
  host and records a :class:`PacketRecord` for every packet sent or
  received, including the MPTCP DSS fields.
* :mod:`repro.trace.analyzer` -- per-flow analysis implementing the
  Section 3.3 metric definitions: RTT samples (data packet to covering
  ACK, retransmissions excluded), loss rate (retransmitted / sent data
  packets), throughput and duration.
* :mod:`repro.trace.metrics` -- connection-level roll-ups: download
  time from the client capture, per-path traffic shares, and joins of
  subflow analyses into the per-configuration rows the tables need.
"""

from repro.trace.capture import (
    CaptureLevel,
    CaptureSummary,
    PacketCapture,
    PacketRecord,
)
from repro.trace.analyzer import FlowAnalysis, analyze_flow, flows_in
from repro.trace.dump import dump, flow_summary, format_record
from repro.trace.metrics import (
    ConnectionMetrics,
    cellular_fraction,
    connection_metrics,
    download_time_from_capture,
)
from repro.trace.mptcptrace import MptcpTraceAnalysis, analyze_mptcp
from repro.trace.timeseries import Series, TimeSeriesProbe

__all__ = [
    "CaptureLevel",
    "CaptureSummary",
    "PacketCapture",
    "PacketRecord",
    "FlowAnalysis",
    "analyze_flow",
    "flows_in",
    "ConnectionMetrics",
    "connection_metrics",
    "cellular_fraction",
    "download_time_from_capture",
    "dump",
    "flow_summary",
    "format_record",
    "Series",
    "TimeSeriesProbe",
    "MptcpTraceAnalysis",
    "analyze_mptcp",
]

"""Test package."""

"""Tests for the analytical models, plus model-vs-simulator validation."""

import math

import pytest

from repro.models import (
    mptcp_aggregate_bound,
    pftk_throughput,
    slow_start_latency,
    slow_start_rounds,
    sqrt_throughput,
)

MSS = 1448


def test_sqrt_law_values():
    # MSS/RTT * sqrt(1.5/p): 1448*8/0.1 * sqrt(150) ~ 1.42 Mbit/s.
    rate = sqrt_throughput(MSS, 0.1, 0.01)
    assert rate == pytest.approx((MSS * 8 / 0.1) * math.sqrt(150), rel=1e-9)


def test_sqrt_law_lossless_is_unbounded():
    assert math.isinf(sqrt_throughput(MSS, 0.05, 0.0))


def test_sqrt_law_scaling():
    base = sqrt_throughput(MSS, 0.1, 0.01)
    assert sqrt_throughput(MSS, 0.2, 0.01) == pytest.approx(base / 2)
    assert sqrt_throughput(MSS, 0.1, 0.04) == pytest.approx(base / 2)


def test_pftk_below_sqrt_law():
    """Timeout term only ever reduces throughput."""
    for p in (0.001, 0.01, 0.05, 0.2):
        assert pftk_throughput(MSS, 0.1, p) <= \
            sqrt_throughput(MSS, 0.1, p) + 1e-9


def test_pftk_monotone_in_loss():
    rates = [pftk_throughput(MSS, 0.05, p)
             for p in (0.002, 0.01, 0.05, 0.2)]
    assert rates == sorted(rates, reverse=True)


def test_pftk_validates_inputs():
    with pytest.raises(ValueError):
        pftk_throughput(MSS, 0.0, 0.01)
    with pytest.raises(ValueError):
        pftk_throughput(MSS, 0.1, 1.5)
    assert math.isinf(pftk_throughput(MSS, 0.1, 0.0))


def test_slow_start_rounds():
    # IW 10: rounds deliver 10, 30, 70, 150... segments cumulatively.
    assert slow_start_rounds(0, MSS) == 0
    assert slow_start_rounds(5 * MSS, MSS) == 1
    assert slow_start_rounds(10 * MSS, MSS) == 1
    assert slow_start_rounds(11 * MSS, MSS) == 2
    assert slow_start_rounds(30 * MSS, MSS) == 2
    assert slow_start_rounds(31 * MSS, MSS) == 3


def test_slow_start_latency_grows_with_size():
    small = slow_start_latency(8 * 1024, MSS, 0.03)
    large = slow_start_latency(512 * 1024, MSS, 0.03)
    assert small < large


def test_mptcp_aggregate_bound():
    assert mptcp_aggregate_bound([10e6, 5e6]) == 15e6
    with pytest.raises(ValueError):
        mptcp_aggregate_bound([-1.0])


# ----------------------------------------------------------------------
# Model-vs-simulator validation: the simulator's TCP must live on the
# curves the literature predicts, within modeling slack.
# ----------------------------------------------------------------------

def test_simulated_wifi_throughput_matches_pftk():
    from repro.experiments.config import FlowSpec
    from repro.experiments.runner import Measurement

    result = Measurement(FlowSpec.single_path("wifi"),
                         8 * 1024 * 1024, seed=13).run()
    assert result.completed
    analysis = result.metrics.per_path["wifi"]
    measured_bps = analysis.throughput_bps
    predicted = pftk_throughput(MSS, analysis.mean_rtt,
                                max(analysis.loss_rate, 1e-4))
    # Within 3x either way: PFTK assumes steady state and ignores the
    # bottleneck cap; the run includes slow start.
    assert predicted / 3 < measured_bps < predicted * 3


def test_simulated_small_flow_latency_matches_slow_start_model():
    from repro.experiments.config import FlowSpec
    from repro.experiments.runner import Measurement

    size = 64 * 1024
    result = Measurement(FlowSpec.single_path("cell", carrier="att"),
                         size, seed=13).run()
    assert result.completed
    rtt = result.metrics.per_path["att"].mean_rtt
    predicted = slow_start_latency(size, MSS, max(rtt, 0.05))
    assert predicted / 2.5 < result.download_time < predicted * 2.5


def test_mptcp_never_exceeds_aggregate_bound():
    from repro.experiments.config import FlowSpec
    from repro.experiments.runner import Measurement
    from repro.wireless.profiles import ATT_LTE, HOME_WIFI

    size = 8 * 1024 * 1024
    result = Measurement(FlowSpec.mptcp(carrier="att"), size,
                         seed=13).run()
    assert result.completed
    achieved = size * 8.0 / result.download_time
    # Generous headroom for environment jitter raising the rates.
    bound = mptcp_aggregate_bound(
        [HOME_WIFI.down_rate, ATT_LTE.down_rate]) * 1.8
    assert achieved < bound

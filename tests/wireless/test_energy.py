"""Tests for the radio energy model."""

import pytest

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession, \
    PlainTcpAcceptor
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.testbed import Testbed, TestbedConfig
from repro.wireless.energy import (
    EVDO_POWER,
    LTE_POWER,
    WIFI_POWER,
    EnergyAudit,
    EnergyMeter,
    PowerProfile,
)

SIMPLE = PowerProfile(name="t", idle_w=0.01, active_w=1.0, tail_s=2.0,
                      promotion_w=2.0, promotion_s=0.5)


def test_single_burst_accounting():
    sim = Simulator()
    meter = EnergyMeter(sim, "client.x", SIMPLE)
    sim.schedule(1.0, meter.on_activity)
    sim.schedule(3.0, meter.on_activity)  # gaps < tail merge
    sim.run()
    report = meter.report(until=10.0)
    assert report.active_time == pytest.approx(2.0)   # 1.0 -> 3.0
    assert report.tail_time == pytest.approx(2.0)     # full tail
    assert report.active_joules == pytest.approx(2.0)
    assert report.tail_joules == pytest.approx(2.0)
    # idle: 10 - 2 active - 2 tail = 6 s at 0.01 W.
    assert report.idle_joules == pytest.approx(0.06)


def test_separate_bursts_pay_tail_twice():
    sim = Simulator()
    meter = EnergyMeter(sim, "client.x", SIMPLE)
    for t in (1.0, 1.5, 10.0, 10.5):
        sim.schedule(t, meter.on_activity)
    sim.run()
    report = meter.report(until=20.0)
    assert report.active_time == pytest.approx(1.0)  # 0.5 + 0.5
    assert report.tail_time == pytest.approx(4.0)    # two full tails


def test_tail_truncated_at_window_end():
    sim = Simulator()
    meter = EnergyMeter(sim, "client.x", SIMPLE)
    sim.schedule(1.0, meter.on_activity)
    sim.run()
    report = meter.report(until=1.5)
    assert report.tail_time == pytest.approx(0.5)


def test_promotion_energy():
    sim = Simulator()
    meter = EnergyMeter(sim, "client.x", SIMPLE)
    meter.on_promotion()
    meter.on_promotion()
    report = meter.report(until=5.0)
    assert report.promotions == 2
    assert report.promotion_joules == pytest.approx(2 * 0.5 * 2.0)


def test_idle_meter_burns_idle_power_only():
    sim = Simulator()
    meter = EnergyMeter(sim, "client.x", SIMPLE)
    report = meter.report(until=100.0)
    assert report.active_joules == 0.0
    assert report.total_joules == pytest.approx(1.0)  # 100 s x 0.01 W


def test_power_profile_ordering():
    """LTE burns more than WiFi; tails dominate cellular cost."""
    assert LTE_POWER.active_w > WIFI_POWER.active_w
    assert LTE_POWER.tail_s > WIFI_POWER.tail_s
    assert EVDO_POWER.promotion_s > LTE_POWER.promotion_s


def run_sp_wifi(size, seed=11):
    testbed = Testbed(TestbedConfig(seed=seed))
    audit = EnergyAudit(testbed)
    config = TcpConfig()
    PlainTcpAcceptor(testbed.sim, testbed.server, HTTP_PORT, config,
                     RenoController, responder=lambda i: size)
    endpoint = TcpEndpoint(testbed.sim, testbed.client, "client.wifi",
                           testbed.client.ephemeral_port(),
                           testbed.server_addrs[0], HTTP_PORT, config,
                           RenoController())
    client = HttpClient(testbed.sim, endpoint, size)
    client.start()
    endpoint.connect()
    testbed.run(until=120.0)
    assert client.record.complete
    return audit, client.record


def run_mptcp(size, seed=11):
    testbed = Testbed(TestbedConfig(seed=seed))
    audit = EnergyAudit(testbed)
    config = MptcpConfig()
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    testbed.run(until=120.0)
    assert client.record.complete
    return audit, client.record


def test_mptcp_costs_more_energy_than_wifi_alone():
    """The Section 6 trade-off: the second radio is not free."""
    size = 4 * 1024 * 1024
    wifi_audit, wifi_record = run_sp_wifi(size)
    mptcp_audit, mptcp_record = run_mptcp(size)
    wifi_joules = wifi_audit.total_joules(until=wifi_record.completed_at)
    mptcp_joules = mptcp_audit.total_joules(
        until=mptcp_record.completed_at)
    assert mptcp_record.download_time < wifi_record.download_time
    assert mptcp_joules > wifi_joules


def test_audit_reports_both_interfaces():
    audit, record = run_mptcp(512 * 1024)
    reports = audit.report(until=record.completed_at)
    assert set(reports) == {"client.wifi", "client.att"}
    assert reports["client.wifi"].active_joules > 0
    assert reports["client.att"].active_joules > 0

"""Tests for the signal-strength model."""

import pytest

from repro.wireless.profiles import ATT_LTE, HOME_WIFI
from repro.wireless.signal import (
    STRONG_DBM,
    WEAK_DBM,
    apply_signal,
    radio_error_rate,
    rate_fraction,
    snr_db,
)


def test_snr_positive_across_paper_range():
    assert snr_db(STRONG_DBM) > snr_db(WEAK_DBM) > 0


def test_rate_fraction_anchored_and_monotone():
    assert rate_fraction(STRONG_DBM) == pytest.approx(1.0)
    values = [rate_fraction(dbm) for dbm in (-60, -70, -80, -90, -102)]
    assert values == sorted(values, reverse=True)
    assert 0.02 <= values[-1] < 0.3


def test_rate_fraction_clamped():
    assert rate_fraction(-30.0) == 1.0
    assert rate_fraction(-140.0) == 0.02


def test_radio_error_rate_grows_with_fade():
    base = 0.02
    strong = radio_error_rate(STRONG_DBM, base)
    weak = radio_error_rate(WEAK_DBM, base)
    assert strong == pytest.approx(base)
    assert weak > strong * 10
    assert weak <= 0.35


def test_apply_signal_scales_profile():
    weak = apply_signal(ATT_LTE, -90.0)
    assert weak.down_rate < ATT_LTE.down_rate
    assert weak.up_rate < ATT_LTE.up_rate
    assert weak.arq.error_rate > ATT_LTE.arq.error_rate
    # Untouched fields survive.
    assert weak.prop_delay == ATT_LTE.prop_delay
    assert weak.promotion_delay == ATT_LTE.promotion_delay


def test_apply_signal_strong_is_nearly_identity():
    strong = apply_signal(ATT_LTE, STRONG_DBM)
    assert strong.down_rate == pytest.approx(ATT_LTE.down_rate)
    assert strong.arq.error_rate == pytest.approx(ATT_LTE.arq.error_rate)


def test_apply_signal_rejects_wifi():
    with pytest.raises(ValueError):
        apply_signal(HOME_WIFI, -70.0)


def test_weak_signal_slows_downloads_end_to_end():
    from repro.experiments.config import FlowSpec
    from repro.experiments.runner import Measurement

    spec = FlowSpec.single_path("cell", carrier="att")
    size = 512 * 1024
    strong = Measurement(spec, size, seed=55,
                         cell_profile=apply_signal(ATT_LTE, -62.0)).run()
    weak = Measurement(spec, size, seed=55,
                       cell_profile=apply_signal(ATT_LTE, -98.0)).run()
    assert strong.completed and weak.completed
    assert weak.download_time > strong.download_time * 1.5


def test_mptcp_absorbs_a_weak_cellular_signal():
    """With WiFi healthy, MPTCP barely notices a faded cellular path."""
    from repro.experiments.config import FlowSpec
    from repro.experiments.runner import Measurement

    spec = FlowSpec.mptcp(carrier="att")
    size = 512 * 1024
    strong = Measurement(spec, size, seed=55,
                         cell_profile=apply_signal(ATT_LTE, -62.0)).run()
    weak = Measurement(spec, size, seed=55,
                       cell_profile=apply_signal(ATT_LTE, -98.0)).run()
    assert weak.download_time < strong.download_time * 2.5

"""Tests for the carrier profiles and environment modulation."""

import random

import pytest

from repro.wireless.profiles import (
    ATT_LTE,
    CARRIER_PROFILES,
    HOME_WIFI,
    PUBLIC_WIFI,
    SERVER_ETHERNET,
    SPRINT_EVDO,
    VERIZON_LTE,
    WIFI_PROFILES,
    EnvironmentFactors,
    TimeOfDay,
    environment_factor,
)


def test_all_three_carriers_registered():
    assert set(CARRIER_PROFILES) == {"att", "verizon", "sprint"}
    assert set(WIFI_PROFILES) == {"home", "public"}


def test_paper_path_orderings():
    """The qualitative facts of Section 2.1 / Table 2."""
    # WiFi: shortest RTT, highest loss.
    assert HOME_WIFI.prop_delay < ATT_LTE.prop_delay
    assert HOME_WIFI.down_loss > ATT_LTE.down_loss
    # Cellular: near-lossless to TCP (loss handled by ARQ).
    for profile in (ATT_LTE, VERIZON_LTE, SPRINT_EVDO):
        assert profile.down_loss == 0.0
        assert profile.arq is not None
    # 3G is the slowest and has the largest base RTT among cellular.
    assert SPRINT_EVDO.down_rate < VERIZON_LTE.down_rate < ATT_LTE.down_rate
    assert SPRINT_EVDO.prop_delay > ATT_LTE.prop_delay
    # Public hotspot is worse than home WiFi.
    assert PUBLIC_WIFI.down_loss > HOME_WIFI.down_loss
    assert PUBLIC_WIFI.down_rate < HOME_WIFI.down_rate


def test_cellular_profiles_have_promotion_delay():
    for profile in CARRIER_PROFILES.values():
        assert profile.promotion_delay > 0
        assert profile.is_cellular
    assert not HOME_WIFI.is_cellular
    assert HOME_WIFI.is_wifi and not ATT_LTE.is_wifi


def test_rate_variability_ordering():
    """Variance grows AT&T < Verizon, Sprint (Section 5.1)."""
    assert ATT_LTE.modulation.sigma < VERIZON_LTE.modulation.sigma
    assert ATT_LTE.modulation.sigma < SPRINT_EVDO.modulation.sigma


def test_link_configs_mirror_profile():
    up, down = ATT_LTE.link_configs()
    assert up.rate_bps == ATT_LTE.up_rate
    assert down.rate_bps == ATT_LTE.down_rate
    assert down.buffer_bytes == ATT_LTE.down_buffer
    assert up.prop_delay == down.prop_delay == ATT_LTE.prop_delay
    assert down.arq is ATT_LTE.arq


def test_with_environment_scales_rates_and_losses():
    env = EnvironmentFactors(rate_scale=0.5, loss_scale=2.0)
    scaled = HOME_WIFI.with_environment(env)
    assert scaled.down_rate == pytest.approx(HOME_WIFI.down_rate * 0.5)
    assert scaled.down_loss == pytest.approx(HOME_WIFI.down_loss * 2.0)
    # Other fields untouched.
    assert scaled.prop_delay == HOME_WIFI.prop_delay
    assert scaled.down_buffer == HOME_WIFI.down_buffer


def test_with_environment_clamps_loss():
    env = EnvironmentFactors(rate_scale=1.0, loss_scale=1000.0)
    scaled = HOME_WIFI.with_environment(env)
    assert scaled.down_loss <= 0.25


def test_environment_factor_deterministic_per_seed():
    a = environment_factor(random.Random(1), HOME_WIFI, TimeOfDay.EVENING)
    b = environment_factor(random.Random(1), HOME_WIFI, TimeOfDay.EVENING)
    assert a == b


def test_environment_factor_positive():
    rng = random.Random(2)
    for period in TimeOfDay:
        for profile in (HOME_WIFI, ATT_LTE, SPRINT_EVDO):
            env = environment_factor(rng, profile, period)
            assert env.rate_scale > 0
            assert env.loss_scale > 0


def test_wifi_evening_is_more_loaded_than_night():
    """Average over draws: evening raises loss, lowers rate for WiFi."""
    rng = random.Random(3)
    nights = [environment_factor(rng, HOME_WIFI, TimeOfDay.NIGHT)
              for _ in range(300)]
    evenings = [environment_factor(rng, HOME_WIFI, TimeOfDay.EVENING)
                for _ in range(300)]
    def mean(values):
        return sum(values) / len(values)
    assert mean([env.loss_scale for env in evenings]) > \
        mean([env.loss_scale for env in nights])
    assert mean([env.rate_scale for env in evenings]) < \
        mean([env.rate_scale for env in nights])


def test_cellular_environment_is_period_insensitive():
    a = environment_factor(random.Random(4), ATT_LTE, TimeOfDay.NIGHT)
    b = environment_factor(random.Random(4), ATT_LTE, TimeOfDay.EVENING)
    assert a == b


def test_server_ethernet_is_effectively_ideal():
    assert SERVER_ETHERNET.down_rate >= 1e9
    assert SERVER_ETHERNET.down_loss == 0.0
    assert SERVER_ETHERNET.arq is None

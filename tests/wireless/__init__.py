"""Test package."""

"""Tests for the cellular RRC state machine."""

from repro.sim.engine import Simulator
from repro.wireless.rrc import RadioState, RadioStateMachine


def test_starts_idle():
    sim = Simulator()
    radio = RadioStateMachine(sim, promotion_delay=1.5)
    assert radio.state is RadioState.IDLE


def test_request_while_idle_waits_for_promotion():
    sim = Simulator()
    radio = RadioStateMachine(sim, promotion_delay=1.5)
    fired = []
    radio.request(lambda: fired.append(sim.now))
    assert radio.state is RadioState.PROMOTING
    sim.run(until=2.0)  # bounded: don't run into the demotion timer
    assert fired == [1.5]
    assert radio.state is RadioState.CONNECTED


def test_requests_queue_during_promotion():
    sim = Simulator()
    radio = RadioStateMachine(sim, promotion_delay=1.0)
    fired = []
    radio.request(lambda: fired.append("a"))
    radio.request(lambda: fired.append("b"))
    assert radio.promotions == 1  # only one promotion in flight
    sim.run(until=2.0)
    assert fired == ["a", "b"]


def test_request_while_connected_is_immediate():
    sim = Simulator()
    radio = RadioStateMachine(sim, promotion_delay=1.0)
    radio.warm_up()
    fired = []
    radio.request(lambda: fired.append(sim.now))
    assert fired == [0.0]


def test_warm_up_skips_promotion_delay():
    sim = Simulator()
    radio = RadioStateMachine(sim, promotion_delay=2.0)
    radio.warm_up()
    assert radio.state is RadioState.CONNECTED
    assert radio.promotions == 0


def test_inactivity_demotes_to_idle():
    sim = Simulator()
    radio = RadioStateMachine(sim, promotion_delay=1.0,
                              inactivity_timeout=5.0)
    radio.warm_up()
    sim.run(until=6.0)
    assert radio.state is RadioState.IDLE


def test_touch_resets_demotion_timer():
    sim = Simulator()
    radio = RadioStateMachine(sim, promotion_delay=1.0,
                              inactivity_timeout=5.0)
    radio.warm_up()
    sim.schedule(4.0, radio.touch)
    sim.run(until=8.0)
    assert radio.state is RadioState.CONNECTED
    sim.run(until=10.0)
    assert radio.state is RadioState.IDLE


def test_repromotion_after_demotion():
    sim = Simulator()
    radio = RadioStateMachine(sim, promotion_delay=1.0,
                              inactivity_timeout=2.0)
    radio.warm_up()
    sim.run(until=3.0)  # demoted
    fired = []
    radio.request(lambda: fired.append(sim.now))
    sim.run(until=5.0)
    assert fired == [4.0]
    assert radio.promotions == 1

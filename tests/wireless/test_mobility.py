"""Tests for interface outages and MPTCP handover behaviour."""

import pytest

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession, \
    PlainTcpAcceptor
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.testbed import Testbed, TestbedConfig
from repro.wireless.mobility import InterfaceOutage

MB = 1024 * 1024


def start_mptcp_download(testbed, size, config=None):
    config = config or MptcpConfig()
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    return connection, client


def wire_outage(testbed, connection, down_at, up_at):
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=down_at, up_at=up_at)
    manager = connection.path_manager
    outage.on_down.append(
        lambda: manager.on_interface_down("client.wifi"))
    if up_at is not None:
        outage.on_up.append(
            lambda: manager.on_interface_up("client.wifi"))
    return outage


def test_outage_black_holes_traffic():
    testbed = Testbed(TestbedConfig(seed=1))
    iface = testbed.client.interfaces["client.wifi"]
    outage = InterfaceOutage(testbed.sim, iface)
    outage.schedule(down_at=0.5, up_at=2.0)
    testbed.run(until=1.0)
    assert outage.is_down
    assert iface.up_link.is_down and iface.down_link.is_down
    testbed.run(until=3.0)
    assert not outage.is_down


def test_outage_callbacks_fire():
    testbed = Testbed(TestbedConfig(seed=1))
    iface = testbed.client.interfaces["client.wifi"]
    outage = InterfaceOutage(testbed.sim, iface)
    events = []
    outage.on_down.append(lambda: events.append(("down", testbed.sim.now)))
    outage.on_up.append(lambda: events.append(("up", testbed.sim.now)))
    outage.schedule(down_at=1.0, up_at=2.5)
    testbed.run(until=5.0)
    assert events == [("down", 1.0), ("up", 2.5)]


def test_recovery_must_follow_outage():
    testbed = Testbed(TestbedConfig(seed=1))
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    with pytest.raises(ValueError):
        outage.schedule(down_at=2.0, up_at=1.0)


def test_mptcp_survives_wifi_outage():
    """The core handover claim: the download completes on cellular."""
    testbed = Testbed(TestbedConfig(seed=3))
    connection, client = start_mptcp_download(testbed, 4 * MB)
    wire_outage(testbed, connection, down_at=0.8, up_at=None)
    testbed.run(until=120.0)
    assert client.record.complete
    shares = connection.receive_buffer.metrics.bytes_by_path
    assert shares.get("att", 0) > 3 * MB


def test_mptcp_reuses_wifi_after_recovery():
    testbed = Testbed(TestbedConfig(seed=3))
    connection, client = start_mptcp_download(testbed, 8 * MB)
    wire_outage(testbed, connection, down_at=0.8, up_at=3.0)
    testbed.run(until=120.0)
    assert client.record.complete
    # A fresh WiFi subflow was opened after recovery...
    wifi_subflows = [s for s in connection.subflows
                     if s.path_name == "wifi"]
    assert len(wifi_subflows) == 2
    states = {s.endpoint.state for s in wifi_subflows}
    assert "failed" in states
    # ...and it carried data again.
    post_recovery = connection.receive_buffer.metrics.bytes_by_path
    assert post_recovery.get("wifi", 0) > 0


def test_link_down_signal_fails_subflow_immediately():
    testbed = Testbed(TestbedConfig(seed=3))
    connection, client = start_mptcp_download(testbed, 4 * MB)
    wire_outage(testbed, connection, down_at=0.8, up_at=None)
    testbed.run(until=0.81)
    wifi = [s for s in connection.subflows if s.path_name == "wifi"][0]
    assert wifi.endpoint.state == "failed"


def test_single_path_tcp_stalls_through_outage():
    """The contrast the paper draws: SP-WiFi cannot make progress."""
    testbed = Testbed(TestbedConfig(seed=3))
    config = TcpConfig()
    PlainTcpAcceptor(testbed.sim, testbed.server, HTTP_PORT, config,
                     RenoController, responder=lambda i: 4 * MB)
    endpoint = TcpEndpoint(testbed.sim, testbed.client, "client.wifi",
                           testbed.client.ephemeral_port(),
                           testbed.server_addrs[0], HTTP_PORT, config,
                           RenoController())
    client = HttpClient(testbed.sim, endpoint, 4 * MB)
    client.start()
    endpoint.connect()
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=0.8, up_at=6.0)
    testbed.run(until=60.0)
    mptcp_testbed = Testbed(TestbedConfig(seed=3))
    connection, mptcp_client = start_mptcp_download(mptcp_testbed, 4 * MB)
    wire_outage(mptcp_testbed, connection, down_at=0.8, up_at=6.0)
    mptcp_testbed.run(until=60.0)
    assert mptcp_client.record.complete
    # SP either failed outright or took far longer than MPTCP.
    if client.record.complete:
        assert client.record.download_time > \
            mptcp_client.record.download_time * 1.5


def test_reinjection_keeps_stream_exactly_once():
    """Despite duplicate DSN transmission, the app sees each byte once."""
    testbed = Testbed(TestbedConfig(seed=9))
    connection, client = start_mptcp_download(testbed, 2 * MB)
    wire_outage(testbed, connection, down_at=0.4, up_at=None)
    testbed.run(until=60.0)
    assert client.record.complete
    assert client.record.bytes_received == 2 * MB
    assert connection.receive_buffer.metrics.delivered_bytes == 2 * MB


def test_outage_during_handshake_recovers():
    """Regression: with the initial SYN lost to radio noise and WiFi
    down across the retry window, the reopened subflow must carry
    MP_CAPABLE again — a reopened MP_JOIN would sit in the server's
    pending queue forever and the connection would never establish
    (hypothesis-found: seed 231, outage 1.0-2.0 s)."""
    testbed = Testbed(TestbedConfig(seed=231))
    connection, client = start_mptcp_download(testbed, MB)
    wire_outage(testbed, connection, down_at=1.0, up_at=2.0)
    testbed.run(until=240.0)
    assert client.record.complete
    assert client.record.bytes_received == MB
    # Establishment only became possible once the interface returned.
    assert client.record.established_at >= 2.0

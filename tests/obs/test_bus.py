"""Trace bus unit tests: emit/query, sinks, and the null bus."""

import json

import pytest

from repro.obs.bus import (
    JsonlSink,
    MemorySink,
    NULL_TRACE_BUS,
    RingSink,
    TraceBus,
    TraceEvent,
    make_trace_bus,
    read_jsonl,
    ring_of,
)


def _filled_bus():
    bus = TraceBus(MemorySink())
    bus.emit(0.0, "tcp.established", subflow=0, name="a")
    bus.emit(0.5, "sched.select", subflow=0, reason="fresh")
    bus.emit(1.0, "sched.refuse", subflow=1, reason="rwnd-limited")
    bus.emit(2.0, "cc.cwnd", subflow=1, cwnd=2896.0)
    return bus


def test_emit_and_query_all():
    bus = _filled_bus()
    assert len(bus.events()) == 4


def test_query_by_kind_prefix():
    bus = _filled_bus()
    assert [e.kind for e in bus.events(kind="sched")] == \
        ["sched.select", "sched.refuse"]
    assert [e.kind for e in bus.events(kind="sched.select")] == \
        ["sched.select"]
    # A prefix must match at a dot boundary, not mid-token.
    assert bus.events(kind="sch") == []


def test_query_by_subflow_and_time():
    bus = _filled_bus()
    assert len(bus.events(subflow=1)) == 2
    assert [e.kind for e in bus.events(t0=0.5, t1=1.0)] == \
        ["sched.select", "sched.refuse"]


def test_event_payload_round_trip():
    event = TraceEvent(1.5, "rto.fire", 2, {"consecutive": 3})
    back = TraceEvent.from_dict(event.to_dict())
    assert (back.t, back.kind, back.subflow, back.data) == \
        (event.t, event.kind, event.subflow, event.data)


def test_null_bus_is_disabled_and_inert():
    assert NULL_TRACE_BUS.enabled is False
    NULL_TRACE_BUS.emit(0.0, "anything", x=1)
    assert NULL_TRACE_BUS.events() == []
    NULL_TRACE_BUS.flush()
    NULL_TRACE_BUS.close()


def test_null_bus_has_no_dict():
    """Slotted like NullInstrumentation: no per-instance dict to pay
    for on the hot path."""
    with pytest.raises(AttributeError):
        NULL_TRACE_BUS.extra = 1


def test_ring_sink_keeps_only_recent(tmp_path):
    bus = TraceBus(RingSink(maxlen=3))
    for index in range(10):
        bus.emit(float(index), "cc.cwnd", n=index)
    ring = ring_of(bus)
    assert [event.t for event in ring] == [7.0, 8.0, 9.0]
    path = tmp_path / "dump.jsonl"
    assert ring.dump(path) == 3
    lines = path.read_text().splitlines()
    assert [json.loads(line)["data"]["n"] for line in lines] == [7, 8, 9]


def test_jsonl_sink_streams_and_reads_back(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = make_trace_bus("jsonl", path=str(path))
    bus.emit(0.25, "mptcp.join", subflow=1, status="established")
    bus.emit(0.50, "rrc.state", old="idle", new="promoting")
    bus.close()
    events = read_jsonl(path)
    assert [event.kind for event in events] == ["mptcp.join", "rrc.state"]
    assert events[0].subflow == 1
    assert events[1].data["new"] == "promoting"


def test_read_jsonl_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(str(path))
    bus = TraceBus(sink)
    bus.emit(1.0, "a.b")
    bus.close()
    with open(path, "a") as handle:
        handle.write('{"t": 2.0, "kind": "tru')  # killed mid-write
    events = read_jsonl(path)
    assert len(events) == 1


def test_make_trace_bus_modes(tmp_path):
    assert make_trace_bus("off") is NULL_TRACE_BUS
    ring_bus = make_trace_bus("ring", ring_size=16)
    assert ring_bus.enabled and ring_of(ring_bus) is not None
    with pytest.raises(ValueError):
        make_trace_bus("jsonl")  # path required
    with pytest.raises(ValueError):
        make_trace_bus("bogus")


def test_multiple_sinks_all_receive():
    first, second = MemorySink(), MemorySink()
    bus = TraceBus(first)
    bus.add_sink(second)
    bus.emit(0.0, "x.y")
    assert len(first) == 1 and len(second) == 1

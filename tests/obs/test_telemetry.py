"""Telemetry unit tests: run log, heartbeats, worker aggregation, and
the progress renderer."""

import io
import json
import os

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.runner import RunDescriptor, RunResult
from repro.obs.telemetry import (
    Heartbeat,
    ProgressRenderer,
    RunLog,
    WorkerTelemetry,
    read_heartbeats,
    write_heartbeat,
)
from repro.trace.metrics import ConnectionMetrics
from repro.wireless.profiles import TimeOfDay

KB = 1024


def _descriptor(index=0, seed=1234):
    return RunDescriptor(index=index,
                         spec=FlowSpec.single_path("wifi"),
                         size=64 * KB, seed=seed,
                         period=TimeOfDay.NIGHT)


# ----------------------------------------------------------------------
# RunLog
# ----------------------------------------------------------------------

def test_run_log_appends_and_reads_back(tmp_path):
    path = tmp_path / "run_log.jsonl"
    with RunLog(path) as log:
        log.log("start", key="a", seed=7)
        log.log("finish", key="a", seed=7, duration_s=0.5)
    records = RunLog.read(path)
    assert [record["event"] for record in records] == ["start", "finish"]
    assert records[0]["seed"] == 7
    assert all("wall" in record for record in records)


def test_run_log_appends_across_instances(tmp_path):
    """O_APPEND semantics: two sequential writers (as across worker
    generations) extend the same file instead of truncating it."""
    path = tmp_path / "run_log.jsonl"
    with RunLog(path) as log:
        log.log("start", key="a")
    with RunLog(path) as log:
        log.log("start", key="b")
    assert [record["key"] for record in RunLog.read(path)] == ["a", "b"]


def test_run_log_closed_raises(tmp_path):
    log = RunLog(tmp_path / "run_log.jsonl")
    log.close()
    with pytest.raises(ValueError):
        log.log("start")
    log.close()  # idempotent


def test_run_log_read_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "run_log.jsonl"
    with RunLog(path) as log:
        log.log("start", key="a")
    with open(path, "a") as handle:
        handle.write('{"event": "fini')  # worker killed mid-write
    assert len(RunLog.read(path)) == 1


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------

def test_heartbeat_write_read_round_trip(tmp_path):
    write_heartbeat(str(tmp_path), "w1", done=3, total=10,
                    events_per_sec=50_000, current="mp2:2097152")
    write_heartbeat(str(tmp_path), "w2", done=1, total=10)
    beats = read_heartbeats(str(tmp_path))
    assert set(beats) == {"w1", "w2"}
    view = Heartbeat(beats["w1"])
    assert (view.done, view.total) == (3, 10)
    assert view.events_per_sec == 50_000
    assert view.current == "mp2:2097152"


def test_heartbeat_replace_leaves_no_temp_files(tmp_path):
    for _ in range(3):
        write_heartbeat(str(tmp_path), "w1", done=1)
    assert os.listdir(tmp_path) == ["w1.json"]


def test_read_heartbeats_skips_garbage(tmp_path):
    write_heartbeat(str(tmp_path), "w1", done=1)
    (tmp_path / "w2.json").write_text("{not json")
    beats = read_heartbeats(str(tmp_path))
    assert set(beats) == {"w1"}
    assert read_heartbeats(str(tmp_path / "missing")) == {}


# ----------------------------------------------------------------------
# WorkerTelemetry
# ----------------------------------------------------------------------

def test_worker_telemetry_record_shapes(tmp_path):
    log_path = tmp_path / "run_log.jsonl"
    beat_dir = tmp_path / "heartbeats"
    telemetry = WorkerTelemetry(run_log_path=str(log_path),
                                heartbeat_dir=str(beat_dir),
                                total=2, label="w-test")
    descriptor = _descriptor(seed=4242)
    telemetry.run_started(descriptor)
    result = RunResult(spec=descriptor.spec, size=descriptor.size,
                       seed=descriptor.seed, period=descriptor.period,
                       completed=True, download_time=1.5,
                       metrics=ConnectionMetrics(download_time=1.5))
    telemetry.run_finished(descriptor, result, duration=0.25, events=1000)
    telemetry.close()

    start, finish = RunLog.read(log_path)
    assert start["event"] == "start"
    assert start["seed"] == 4242
    assert start["spec"] == descriptor.spec.identity
    assert start["worker"] == "w-test"
    assert finish["event"] == "finish"
    assert finish["events"] == 1000
    assert finish["download_time"] == 1.5

    (payload,) = read_heartbeats(str(beat_dir)).values()
    assert payload["done"] == 1
    assert payload["total"] == 2
    assert payload["events_per_sec"] == 4000  # 1000 events / 0.25 s
    assert payload["current"] is None  # between runs


def test_worker_telemetry_fail_record_names_seed_and_spec(tmp_path):
    log_path = tmp_path / "run_log.jsonl"
    telemetry = WorkerTelemetry(run_log_path=str(log_path), label="w-test")
    descriptor = _descriptor(seed=9999)
    telemetry.run_started(descriptor)
    telemetry.run_failed(descriptor, duration=0.1,
                         error=RuntimeError("boom"))
    telemetry.close()
    _start, fail = RunLog.read(log_path)
    assert fail["event"] == "fail"
    assert fail["seed"] == 9999
    assert fail["spec"] == descriptor.spec.identity
    assert "boom" in fail["error"]


def test_worker_telemetry_disabled_is_inert(tmp_path):
    telemetry = WorkerTelemetry()
    assert not telemetry.enabled
    descriptor = _descriptor()
    telemetry.run_started(descriptor)
    telemetry.run_failed(descriptor, duration=0.0, error=ValueError("x"))
    telemetry.close()
    assert os.listdir(tmp_path) == []


# ----------------------------------------------------------------------
# ProgressRenderer
# ----------------------------------------------------------------------

def test_progress_renderer_shows_per_worker_lines(tmp_path):
    beat_dir = str(tmp_path / "heartbeats")
    stream = io.StringIO()
    renderer = ProgressRenderer(beat_dir, total=8, interval=60.0,
                                stream=stream)
    write_heartbeat(beat_dir, "w1", done=2, total=8,
                    events_per_sec=40_000, current="mp2:2097152")
    write_heartbeat(beat_dir, "w2", done=1, total=8,
                    events_per_sec=35_000, current=None)
    renderer.note_done(3)
    renderer.stop()  # renders a final snapshot without starting

    output = stream.getvalue()
    assert "[progress] 3/8 runs" in output
    assert "2 worker(s)" in output
    assert "75,000 ev/s" in output
    assert "w1: 2 runs" in output
    assert "mp2:2097152" in output
    assert "w2: 1 runs" in output
    assert "idle" in output


def test_progress_renderer_thread_lifecycle(tmp_path):
    stream = io.StringIO()
    renderer = ProgressRenderer(str(tmp_path / "hb"), total=1,
                                interval=0.01, stream=stream)
    renderer.start()
    renderer.note_done(1)
    renderer.stop()
    assert "[progress] 1/1 runs" in stream.getvalue()
    assert renderer._thread is None


def test_progress_renderer_warm_cache_shows_done(tmp_path):
    """A campaign served entirely from the warm run cache finishes in
    microseconds with zero heartbeats.  The renderer must report
    completion, not extrapolate a nonsense ETA from ~zero elapsed
    time (the historical failure mode: 'ETA 0s' from a huge rate, or
    a ZeroDivisionError)."""
    stream = io.StringIO()
    renderer = ProgressRenderer(str(tmp_path / "hb"), total=6,
                                interval=60.0, stream=stream)
    renderer.note_done(6)  # every cell restored before any live run
    renderer.stop()
    output = stream.getvalue()
    assert "[progress] 6/6 runs" in output
    assert "| done" in output
    assert "ETA" not in output


def test_progress_renderer_empty_campaign_is_done(tmp_path):
    """total=0 (an empty plan) must not divide by zero."""
    stream = io.StringIO()
    renderer = ProgressRenderer(str(tmp_path / "hb"), total=0,
                                interval=60.0, stream=stream)
    renderer.stop()
    assert "[progress] 0/0 runs" in stream.getvalue()
    assert "| done" in stream.getvalue()


def test_progress_renderer_unstarted_shows_unknown_eta(tmp_path):
    """Before any completion there is no observed rate: the renderer
    must show 'ETA ?' rather than crash or claim progress."""
    stream = io.StringIO()
    renderer = ProgressRenderer(str(tmp_path / "hb"), total=4,
                                interval=60.0, stream=stream)
    renderer.stop()
    assert "[progress] 0/4 runs" in stream.getvalue()
    assert "ETA ?" in stream.getvalue()

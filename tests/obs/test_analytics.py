"""AnalyticsStore: idempotent ingestion, torn-line tolerance, and the
SLA query API over a small real campaign."""

import shutil

import pytest

from repro.experiments.config import FlowSpec, parse_failure
from repro.experiments.runner import Campaign, CampaignSpec
from repro.experiments.storage import save_results
from repro.obs.analytics import AnalyticsStore
from repro.wireless.profiles import TimeOfDay

KB = 1024
OUTAGE = "outage:down=0.3,up=0.8"


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    """A completed mini campaign on disk: results + run log, metrics on.

    One undisturbed SP-WiFi spec and one MP-2 spec crossing a WiFi
    outage, two repetitions each at 512 KB.
    """
    directory = tmp_path_factory.mktemp("analytics-campaign")
    spec = CampaignSpec(
        name="analytics-mini",
        specs=(FlowSpec.single_path("wifi"),
               FlowSpec.mptcp(carrier="att", controller="coupled",
                              failure=OUTAGE)),
        sizes=(512 * KB,), repetitions=2,
        periods=(TimeOfDay.NIGHT,), base_seed=41)
    campaign = Campaign(spec, run_log=str(directory / "run_log.jsonl"),
                        metrics="on")
    results = campaign.run()
    assert all(result.completed for result in results)
    save_results(directory / "mini-results.jsonl", results)
    return directory


def _table_counts(store):
    return {table: store.count(table)
            for table in ("runs", "flows", "subflows", "failures",
                          "metrics", "events")}


def test_ingest_directory_is_idempotent(campaign_dir):
    with AnalyticsStore() as store:
        first = store.ingest_directory(str(campaign_dir))
        counts = _table_counts(store)
        assert first["results"] == 4
        assert counts["runs"] == 4
        assert counts["failures"] == 2  # only the outage cohort
        store.ingest_directory(str(campaign_dir))
        assert _table_counts(store) == counts


def test_run_log_fills_wall_columns(campaign_dir):
    with AnalyticsStore() as store:
        store.ingest_directory(str(campaign_dir))
        walls = [row[0] for row in store._db.execute(
            "SELECT wall_duration_s FROM runs")]
        assert len(walls) == 4
        assert all(wall is not None and wall > 0 for wall in walls)


def test_torn_trailing_line_is_tolerated(campaign_dir, tmp_path):
    torn = tmp_path / "torn"
    torn.mkdir()
    shutil.copy(campaign_dir / "mini-results.jsonl",
                torn / "mini-results.jsonl")
    with open(torn / "mini-results.jsonl", "a", encoding="utf-8") as handle:
        handle.write('{"version": 2, "spec": {"mode": "sp"')  # cut mid-write
    with AnalyticsStore() as store, pytest.warns(RuntimeWarning):
        counts = store.ingest_directory(str(torn))
        assert counts["results"] == 4  # intact rows survive the tail


def test_percentile_ladder_and_stalls(campaign_dir):
    with AnalyticsStore() as store:
        store.ingest_directory(str(campaign_dir))
        ladder = store.percentile_ladder()
        keys = {(row["label"], row["failure"]) for row in ladder}
        assert keys == {("SP-WiFi", "none"), ("MP-2", OUTAGE)}
        for row in ladder:
            assert row["n"] == 2
            assert 0 < row["p50"] <= row["p99"]
        stalls = {row["label"]: row for row in store.stall_distribution()}
        # The outage cohort must show RTO stall time; its per-run stall
        # quantiles are positive.
        assert stalls["MP-2"]["stalled"] == 2
        assert stalls["MP-2"]["p99_stall_s"] > 0


def test_path_shares_sum_to_one(campaign_dir):
    with AnalyticsStore() as store:
        store.ingest_directory(str(campaign_dir))
        rows = store.path_shares()
        by_label = {}
        for row in rows:
            by_label.setdefault(row["label"], 0.0)
            by_label[row["label"]] += row["mean_share"]
        for label, total in by_label.items():
            assert total == pytest.approx(1.0, abs=1e-6), label


def test_survival_curve_steps_down_from_one(campaign_dir):
    with AnalyticsStore() as store:
        store.ingest_directory(str(campaign_dir))
        series = store.survival_curve()
        points = series.to_rows()
        assert points[0] == (0.0, 1.0)
        values = [value for _, value in points]
        assert values == sorted(values, reverse=True)
        # Every crossing flow completed, so survival reaches zero.
        assert values[-1] == 0.0
        assert store._db.execute(
            "SELECT COUNT(*) FROM failures WHERE crossed = 1"
        ).fetchone()[0] == 2


def test_sla_table_merges_cohorts(campaign_dir):
    with AnalyticsStore() as store:
        store.ingest_directory(str(campaign_dir))
        rows = {(row["label"], row["failure"]): row
                for row in store.sla_table()}
        undisturbed = rows[("SP-WiFi", "none")]
        outage = rows[("MP-2", OUTAGE)]
        assert undisturbed["crossed_failure"] == 0
        assert outage["crossed_failure"] == 2
        assert outage["survived_failure"] == 2
        assert outage["p50"] is not None


def test_parse_failure_grammar():
    schedule = parse_failure("outage:down=2,up=6")
    assert schedule == {"kind": "outage", "down_at": 2.0, "up_at": 6.0,
                        "path": "wifi"}
    assert parse_failure("outage:down=1,up=never")["up_at"] is None
    assert parse_failure("outage:down=1,up=2,path=cell")["path"] == "cell"
    for bad in ("outage", "outage:down=x,up=1", "outage:down=1",
                "blackout:down=1,up=2", "outage:down=2,up=1",
                "outage:down=1,up=2,path=dsl"):
        with pytest.raises(ValueError):
            parse_failure(bad)


def test_failure_identity_gating():
    plain = FlowSpec.mptcp(carrier="att")
    assert "failure" not in plain.identity
    failing = FlowSpec.mptcp(carrier="att", failure=OUTAGE)
    assert f"failure={OUTAGE}" in failing.identity
    with pytest.raises(ValueError):
        FlowSpec.mptcp(carrier="att", failure="nonsense")

"""Flight-recorder behaviour: a run that raises mid-simulation leaves
its last events on disk, and a failed campaign run leaves a ``fail``
record in the run log naming the seed and FlowSpec."""

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.parallel import execute_plan
from repro.experiments.runner import Campaign, CampaignSpec, Measurement
from repro.obs.bus import read_jsonl
from repro.obs.telemetry import RunLog
from repro.testbed import Testbed
from repro.wireless.profiles import TimeOfDay

KB = 1024


class Boom(RuntimeError):
    """The injected mid-simulation failure."""


CRASH_AT = 0.05


def _crashing_run(self, until=None, max_events=None):
    """Replacement ``Testbed.run``: simulate a while, then die."""
    self.sim.run(until=CRASH_AT)
    raise Boom("injected mid-simulation failure")


@pytest.fixture
def crash_mid_simulation(monkeypatch):
    monkeypatch.setattr(Testbed, "run", _crashing_run)


def _measurement(trace, trace_path):
    return Measurement(FlowSpec.mptcp(carrier="att", controller="coupled"),
                       256 * KB, seed=17, trace=trace,
                       trace_path=trace_path)


def test_ring_dumped_when_run_raises(crash_mid_simulation, tmp_path):
    dump_path = tmp_path / "flight.jsonl"
    measurement = _measurement("ring", str(dump_path))
    with pytest.raises(Boom):
        measurement.run()
    assert measurement.flight_dump_path == str(dump_path)
    events = read_jsonl(dump_path)
    assert events, "flight recorder dumped no events"
    # Every recorded event precedes the failure's simulated time, and
    # they are in timeline order ending just before the crash.
    times = [event.t for event in events]
    assert times == sorted(times)
    assert times[-1] <= CRASH_AT
    # The window covers the connection bring-up.
    kinds = {event.kind for event in events}
    assert "mptcp.capable" in kinds


def test_no_dump_on_clean_run(tmp_path):
    dump_path = tmp_path / "flight.jsonl"
    measurement = _measurement("ring", str(dump_path))
    result = measurement.run()
    assert result.completed
    assert measurement.flight_dump_path is None
    assert not dump_path.exists()


def test_jsonl_stream_survives_a_raise(crash_mid_simulation, tmp_path):
    """In jsonl mode everything is already on disk: a crash flushes and
    closes the stream instead of dumping a ring."""
    stream_path = tmp_path / "events.jsonl"
    measurement = _measurement("jsonl", str(stream_path))
    with pytest.raises(Boom):
        measurement.run()
    assert measurement.flight_dump_path is None
    events = read_jsonl(stream_path)
    assert events
    assert events[-1].t <= CRASH_AT


def _campaign(trace, trace_dir, run_log, jobs=1):
    spec = CampaignSpec(name="crashy",
                        specs=(FlowSpec.single_path("wifi"),),
                        sizes=(64 * KB,), repetitions=2,
                        periods=(TimeOfDay.NIGHT,), base_seed=7)
    return Campaign(spec, jobs=jobs, trace=trace, trace_dir=trace_dir,
                    run_log=run_log)


@pytest.mark.parametrize("jobs", [1, 2])
def test_failed_worker_leaves_fail_record(tmp_path, jobs):
    """Force every run to fail inside the worker (jsonl tracing with no
    trace directory -> the bus factory raises): the shared run log must
    record the failure with the seed and FlowSpec identity before the
    exception reaches the parent."""
    log_path = tmp_path / "run_log.jsonl"
    campaign = _campaign("jsonl", None, str(log_path), jobs=jobs)
    with pytest.raises(ValueError, match="jsonl"):
        campaign.run()
    records = RunLog.read(log_path)
    fails = [record for record in records if record["event"] == "fail"]
    assert fails, "no fail record reached the run log"
    descriptors = campaign.plan()
    known_seeds = {descriptor.seed for descriptor in descriptors}
    for fail in fails:
        assert fail["seed"] in known_seeds
        assert fail["spec"] == descriptors[0].spec.identity
        assert "jsonl" in fail["error"]
        assert fail["worker"]


def test_parallel_crash_dump_attributed_and_ingestable(
        crash_mid_simulation, tmp_path):
    """A mid-simulation crash under ``--jobs 2`` leaves a flight-recorder
    dump named after the failing descriptor (``flight-run-NNNN-SEED``),
    the run log records the failure, and the analytics store attributes
    the dumped events to that run.  (Workers are forked, so the parent's
    crash monkeypatch reaches them.)"""
    from repro.obs.analytics import AnalyticsStore

    log_path = tmp_path / "run_log.jsonl"
    spec = CampaignSpec(name="crashy-ring",
                        specs=(FlowSpec.mptcp(carrier="att",
                                              controller="coupled"),),
                        sizes=(256 * KB,), repetitions=2,
                        periods=(TimeOfDay.NIGHT,), base_seed=7)
    campaign = Campaign(spec, jobs=2, trace="ring",
                        trace_dir=str(tmp_path), run_log=str(log_path))
    with pytest.raises(Boom):
        campaign.run()
    descriptors = {descriptor.seed: descriptor
                   for descriptor in campaign.plan()}
    dumps = sorted(tmp_path.glob("flight-run-*.jsonl"))
    assert dumps, "no flight-recorder dump reached the trace dir"
    failed_seeds = {record["seed"] for record in RunLog.read(log_path)
                    if record["event"] == "fail"}
    for dump in dumps:
        index, seed = dump.stem.rsplit("-", 2)[-2:]
        seed = int(seed)
        # The filename names the failing descriptor, and that failure
        # also reached the shared run log.
        assert seed in descriptors
        assert descriptors[seed].index == int(index)
        assert seed in failed_seeds
        assert read_jsonl(dump), f"{dump.name} dumped no events"
    with AnalyticsStore() as store:
        counts = store.ingest_directory(str(tmp_path))
        assert counts["trace_events"] > 0
        for dump in dumps:
            seed = dump.stem.rsplit("-", 1)[-1]
            row = store._db.execute(
                "SELECT key, status FROM runs WHERE seed = ?",
                (seed,)).fetchone()
            assert row is not None, "dump not attributed to a run"
            key, status = row
            assert status == "fail"
            attributed = store._db.execute(
                "SELECT COUNT(*) FROM events WHERE run_key = ?",
                (key,)).fetchone()[0]
            assert attributed == len(read_jsonl(dump))


def test_serial_failure_still_logs_through_execute_plan(tmp_path):
    """The serial telemetered path shares the worker code, so a crash
    in-process produces the same fail record."""
    log_path = tmp_path / "run_log.jsonl"
    campaign = _campaign("jsonl", None, str(log_path))
    plan = campaign.plan()[:1]
    with pytest.raises(ValueError):
        execute_plan(plan, jobs=1, run_log=str(log_path))
    (start, fail) = RunLog.read(log_path)[-2:]
    assert start["event"] == "start"
    assert fail["event"] == "fail"
    assert fail["seed"] == plan[0].seed

"""Tests for repro.obs: tracing, pcap export, telemetry."""

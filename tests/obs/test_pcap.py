"""Pcap export round-trip: emitted bytes must decode back to the same
sequence numbers, flags, and RFC 6824 MPTCP subtypes."""

import struct

import pytest

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.options import DssMapping, MptcpOptions
from repro.obs.pcap import (
    ADD_ADDR,
    DSS,
    DSS_FLAG_DATA_ACK,
    DSS_FLAG_MAP,
    MP_CAPABLE,
    MP_FAIL,
    MP_JOIN,
    OPT_MPTCP,
    OPT_SACK,
    REMOVE_ADDR,
    AddressMap,
    WireTap,
    build_frame,
    parse_frame,
    read_pcap,
    write_pcap,
)
from repro.tcp.segment import Flags, Segment
from repro.testbed import Testbed, TestbedConfig

KB = 1024


def _record(segment, time=0.0, src="client.wifi", dst="server.eth0"):
    return (time, "send", src, dst, segment)


def _frame_for(segment):
    addresses = AddressMap()
    return build_frame(addresses.ip("a"), addresses.ip("b"),
                       addresses.mac("a"), addresses.mac("b"),
                       segment, ident=1)


def _mptcp_options(parsed):
    return [option for option in parsed["options"]
            if option["kind"] == OPT_MPTCP]


# ----------------------------------------------------------------------
# Option encoding round-trips
# ----------------------------------------------------------------------

def test_mp_capable_round_trip():
    segment = Segment(src_port=4000, dst_port=80, seq=0,
                      flags=Flags(syn=True),
                      options=MptcpOptions(mp_capable=True, token=0xDEAD))
    parsed = parse_frame(_frame_for(segment))
    (option,) = _mptcp_options(parsed)
    assert option["subtype"] == MP_CAPABLE
    # The 64-bit key folds the simulator token into both halves.
    assert option["token"] == 0xDEAD
    assert option["key"] == (0xDEAD << 32) | 0xDEAD
    assert parsed["flags"].syn and not parsed["flags"].ack


def test_mp_join_backup_bit_round_trip():
    segment = Segment(src_port=4001, dst_port=80, seq=0,
                      flags=Flags(syn=True),
                      options=MptcpOptions(mp_join=True, backup=True,
                                           token=77))
    (option,) = _mptcp_options(parse_frame(_frame_for(segment)))
    assert option["subtype"] == MP_JOIN
    assert option["backup"] is True
    assert option["token"] == 77


def test_dss_mapping_with_data_ack_round_trip():
    options = MptcpOptions(dss=DssMapping(dsn=5000, ssn=3000, length=1448),
                           data_ack=4999)
    segment = Segment(src_port=80, dst_port=4000, seq=3000, ack=10,
                      flags=Flags(ack=True), payload_len=1448,
                      options=options)
    (option,) = _mptcp_options(parse_frame(_frame_for(segment)))
    assert option["subtype"] == DSS
    assert option["flags"] & DSS_FLAG_MAP
    assert option["flags"] & DSS_FLAG_DATA_ACK
    assert (option["dsn"], option["ssn"], option["length"]) == \
        (5000, 3000, 1448)
    assert option["data_ack"] == 4999
    assert option["data_fin"] is False


def test_bare_data_ack_uses_short_dss():
    segment = Segment(src_port=4000, dst_port=80, ack=6448,
                      flags=Flags(ack=True),
                      options=MptcpOptions(data_ack=6448))
    (option,) = _mptcp_options(parse_frame(_frame_for(segment)))
    assert option["subtype"] == DSS
    assert option["data_ack"] == 6448
    assert "dsn" not in option


def test_add_addr_remove_addr_and_mp_fail():
    options = MptcpOptions(add_addr=("server.eth1",),
                           dead_addrs=("server.eth0",),
                           mp_fail=True)
    segment = Segment(src_port=80, dst_port=4000, flags=Flags(ack=True),
                      options=options)
    decoded = _mptcp_options(parse_frame(_frame_for(segment)))
    subtypes = [option["subtype"] for option in decoded]
    assert subtypes == [ADD_ADDR, REMOVE_ADDR, MP_FAIL]
    add = decoded[0]
    assert add["ipver"] == 4
    assert add["address_id"] == 1
    assert add["ip"].startswith("10.0.0.")


def test_sack_blocks_round_trip():
    segment = Segment(src_port=4000, dst_port=80, ack=1000,
                      flags=Flags(ack=True),
                      sack_blocks=((2000, 3448), (5000, 6448)))
    parsed = parse_frame(_frame_for(segment))
    (sack,) = [option for option in parsed["options"]
               if option["kind"] == OPT_SACK]
    assert sack["blocks"] == [(2000, 3448), (5000, 6448)]


def test_header_fields_round_trip():
    segment = Segment(src_port=51234, dst_port=80, seq=123456,
                      ack=654321, flags=Flags(ack=True, fin=True),
                      payload_len=512, window=29200)
    parsed = parse_frame(_frame_for(segment))
    assert parsed["src_port"] == 51234
    assert parsed["dst_port"] == 80
    assert parsed["seq"] == 123456
    assert parsed["ack"] == 654321
    assert parsed["window"] == 29200
    assert parsed["payload_len"] == 512
    assert parsed["flags"] == Flags(ack=True, fin=True)


def test_checksums_verify():
    """IPv4 header and TCP checksums sum to zero when recomputed over
    the as-written bytes (the invariant real NICs check)."""
    from repro.obs.pcap import _checksum16

    segment = Segment(src_port=4000, dst_port=80, seq=7, ack=9,
                      flags=Flags(ack=True), payload_len=100,
                      options=MptcpOptions(data_ack=9))
    frame = _frame_for(segment)
    ip = frame[14:]
    ihl = (ip[0] & 0xF) * 4
    assert _checksum16(ip[:ihl]) == 0
    total_length = struct.unpack(">H", ip[2:4])[0]
    tcp = ip[ihl:total_length]
    pseudo = ip[12:16] + ip[16:20] + struct.pack(">BBH", 0, 6, len(tcp))
    assert _checksum16(pseudo + tcp) == 0


# ----------------------------------------------------------------------
# Address synthesis
# ----------------------------------------------------------------------

def test_address_map_assigns_in_first_seen_order():
    addresses = AddressMap()
    assert addresses.ip("client.wifi") == bytes((10, 0, 0, 1))
    assert addresses.ip("server.eth0") == bytes((10, 0, 0, 2))
    assert addresses.ip("client.wifi") == bytes((10, 0, 0, 1))
    assert addresses.mac("client.wifi") == b"\x02\x00\x0a\x00\x00\x01"
    assert addresses.assignments == {"client.wifi": "10.0.0.1",
                                     "server.eth0": "10.0.0.2"}


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------

def test_write_read_pcap_preserves_times_and_lengths(tmp_path):
    records = [
        _record(Segment(src_port=4000, dst_port=80,
                        flags=Flags(syn=True)), time=0.0),
        _record(Segment(src_port=80, dst_port=4000, payload_len=1448,
                        flags=Flags(ack=True)), time=1.2345678,
                src="server.eth0", dst="client.wifi"),
    ]
    path = tmp_path / "out.pcap"
    assignments = write_pcap(records, path)
    assert assignments == {"client.wifi": "10.0.0.1",
                           "server.eth0": "10.0.0.2"}
    back = read_pcap(path)
    assert len(back) == 2
    assert back[0]["time"] == 0.0
    assert back[1]["time"] == pytest.approx(1.234568, abs=1e-6)
    assert back[1]["payload_len"] == 1448
    assert back[0]["src_ip"] == "10.0.0.1"
    assert back[1]["src_ip"] == "10.0.0.2"
    for record in back:
        assert record["captured_length"] == record["original_length"]


def test_snaplen_truncates_but_keeps_original_length(tmp_path):
    records = [_record(Segment(src_port=4000, dst_port=80,
                               payload_len=4000, flags=Flags(ack=True)))]
    path = tmp_path / "short.pcap"
    write_pcap(records, path, snaplen=96)
    with open(path, "rb") as handle:
        data = handle.read()
    _, _, incl_len, orig_len = struct.unpack("<IIII", data[24:40])
    assert incl_len == 96
    assert orig_len == 14 + 20 + 20 + 4000


def test_read_pcap_rejects_bad_magic(tmp_path):
    path = tmp_path / "bogus.pcap"
    path.write_bytes(b"\x00" * 24)
    with pytest.raises(ValueError, match="magic"):
        read_pcap(path)


# ----------------------------------------------------------------------
# Integration: a real MPTCP run exports a dissectable capture
# ----------------------------------------------------------------------

def test_fig02_style_run_exports_valid_mptcp_pcap(tmp_path):
    """Tap the client during a real two-subflow download, export to
    pcap, and re-parse: the MP_CAPABLE/MP_JOIN handshakes and DSS
    mappings must all be present with correct subtypes."""
    testbed = Testbed(TestbedConfig(carrier="att", seed=17))
    tap = WireTap(testbed.client)
    config = MptcpConfig()
    size = 256 * KB
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    testbed.run(until=300.0)
    assert client.record.complete
    assert len(tap) > 100

    path = tmp_path / "fig02.pcap"
    write_pcap(tap, path)
    records = read_pcap(path)
    assert len(records) == len(tap)

    subtypes = set()
    mapped_bytes = 0
    for record in records:
        for option in _mptcp_options(record):
            subtypes.add(option["subtype"])
            if option["subtype"] == DSS and "length" in option:
                mapped_bytes += option["length"]
    # The full MPTCP signalling of the paper's Section 2.2.1 walkthrough.
    assert {MP_CAPABLE, MP_JOIN, DSS} <= subtypes
    # Every stream byte rides under at least one DSS mapping.
    assert mapped_bytes >= size

    # Two client addresses (wifi + cellular) and both server interfaces
    # appear as distinct synthesized IPs.
    ips = {record["src_ip"] for record in records} \
        | {record["dst_ip"] for record in records}
    assert len(ips) >= 3

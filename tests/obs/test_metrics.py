"""Metrics registry semantics: typed instruments, deterministic
snapshots, and the near-zero-cost disabled path."""

import pytest

from repro.obs.metrics import (
    BYTES_EDGES,
    COUNT_EDGES,
    NULL_METRICS,
    TIME_EDGES_S,
    MetricsRegistry,
    decade_edges,
    make_metrics,
)


def test_null_registry_is_disabled_and_inert():
    assert NULL_METRICS.enabled is False
    # Every instrument accessor hands back a shared no-op; observing
    # through it must not raise and must not create state.
    NULL_METRICS.counter("x").inc()
    NULL_METRICS.gauge("y").set(3.0)
    NULL_METRICS.histogram("z").observe(1.5)
    assert NULL_METRICS.snapshot() is None


def test_counter_gauge_accumulate():
    registry = MetricsRegistry()
    assert registry.enabled is True
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    registry.gauge("g").set(7.5)
    snap = registry.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"] == 7.5


def test_histogram_buckets_and_stats():
    registry = MetricsRegistry()
    histogram = registry.histogram("h", edges=(1.0, 10.0))
    for value in (0.5, 2.0, 5.0, 50.0):
        histogram.observe(value)
    data = registry.snapshot()["histograms"]["h"]
    assert data["count"] == 4
    assert data["sum"] == 57.5
    assert data["min"] == 0.5
    assert data["max"] == 50.0
    assert data["buckets"] == {"le:1": 1, "le:10": 2, "le:inf": 1}


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    with pytest.raises(TypeError):
        registry.gauge("a")  # same name, different kind


def test_snapshot_drops_empty_instruments_and_sorts():
    registry = MetricsRegistry()
    registry.counter("zero")          # never incremented
    registry.histogram("empty")       # never observed
    registry.counter("b").inc()
    registry.counter("a").inc()
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert "histograms" not in snap or "empty" not in snap.get(
        "histograms", {})


def test_decade_edges_are_decimal_literals():
    # 1-2-5 per decade, built from decimal string literals so the edge
    # floats are bit-identical on every platform.
    assert decade_edges(0, 1) == (1.0, 2.0, 5.0, 10.0)
    assert TIME_EDGES_S[0] == 1e-4
    assert BYTES_EDGES[-1] == 1e9
    assert COUNT_EDGES[0] == 1.0


def test_make_metrics_modes():
    assert make_metrics("off") is NULL_METRICS
    assert isinstance(make_metrics("on"), MetricsRegistry)
    with pytest.raises(ValueError):
        make_metrics("sideways")

"""Tests for the per-path QoE metrics tap (repro.obs.pathmetrics)."""

import pytest

from repro.obs.bus import NULL_TRACE_BUS, TraceBus, TraceEvent
from repro.obs.pathmetrics import (
    PathHealth,
    PathMetricsTap,
    ensure_path_metrics,
    metrics_tap,
)


class FakeSim:
    def __init__(self, trace=NULL_TRACE_BUS):
        self.trace = trace


# ----------------------------------------------------------------------
# PathHealth EWMAs
# ----------------------------------------------------------------------

def test_srtt_ewma_starts_at_first_sample():
    health = PathHealth("wifi")
    assert health.srtt is None
    health.note_srtt(0.1, gain=0.25)
    assert health.srtt == 0.1
    health.note_srtt(0.2, gain=0.25)
    assert health.srtt == pytest.approx(0.125)


def test_throughput_needs_one_full_window():
    health = PathHealth("wifi")
    health.note_served(0.0, 1000, window=0.5, gain=0.5)
    health.note_served(0.25, 1000, window=0.5, gain=0.5)
    assert health.throughput is None
    health.note_served(0.5, 1000, window=0.5, gain=0.5)
    assert health.throughput == pytest.approx(3000 / 0.5)
    assert health.bytes_served == 3000


def test_loss_rate_is_events_per_segment():
    health = PathHealth("att")
    assert health.loss_rate() == 0.0
    health.note_loss()
    assert health.loss_rate() == 0.0, "no segments served yet"
    health.note_served(0.0, 1448 * 10, window=0.5, gain=0.5)
    assert health.loss_rate() == pytest.approx(0.1)


# ----------------------------------------------------------------------
# The tap as a trace-bus sink
# ----------------------------------------------------------------------

def test_tap_aggregates_sched_select_events():
    tap = PathMetricsTap()
    tap(TraceEvent(0.0, "sched.select", data={
        "path": "wifi", "length": 2896, "reason": "fresh",
        "candidates": [
            {"subflow": 0, "path": "wifi", "srtt": 0.02},
            {"subflow": 1, "path": "att", "srtt": 0.06},
        ]}))
    assert tap.path("wifi").bytes_served == 2896
    assert tap.path("wifi").srtt == pytest.approx(0.02)
    assert tap.path("att").srtt == pytest.approx(0.06)
    assert tap.path("att").bytes_served == 0


def test_tap_counts_losses_by_endpoint_name():
    tap = PathMetricsTap()
    tap(TraceEvent(1.0, "tcp.fast_retransmit",
                   data={"name": "mptcp-client.att"}))
    tap(TraceEvent(1.5, "rto.fire", data={"name": "mptcp-client.wifi"}))
    assert tap.path("att").loss_events == 1
    assert tap.path("wifi").loss_events == 1


def test_tap_ignores_unrelated_events():
    tap = PathMetricsTap()
    tap(TraceEvent(0.0, "cc.cwnd", data={"name": "mptcp-client.wifi"}))
    tap(TraceEvent(0.0, "sched.select", data={"reason": "reinject"}))
    assert tap.path("wifi") is None


def test_tap_is_passive_sink():
    tap = PathMetricsTap()
    assert tap.retains is False
    tap.flush()
    tap.close()


# ----------------------------------------------------------------------
# Installation on the simulator bus
# ----------------------------------------------------------------------

def test_ensure_installs_bus_when_tracing_off():
    sim = FakeSim()
    tap = ensure_path_metrics(sim)
    assert isinstance(sim.trace, TraceBus)
    assert metrics_tap(sim.trace) is tap
    assert ensure_path_metrics(sim) is tap, "idempotent"


def test_ensure_adds_tap_to_existing_bus():
    events = []
    bus = TraceBus(events.append)
    sim = FakeSim(trace=bus)
    tap = ensure_path_metrics(sim)
    assert sim.trace is bus, "existing bus must be kept"
    assert metrics_tap(bus) is tap
    assert ensure_path_metrics(sim) is tap
    bus.emit(0.0, "sched.select", path="wifi", length=100)
    assert len(events) == 1, "pre-existing sinks still fire"
    assert tap.path("wifi").bytes_served == 100


# ----------------------------------------------------------------------
# End to end: the QoE scheduler's plumbing
# ----------------------------------------------------------------------

def test_qoe_scheduler_gets_live_metrics_end_to_end():
    from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
    from repro.core.connection import MptcpConfig, MptcpConnection, \
        MptcpListener
    from repro.testbed import Testbed, TestbedConfig

    testbed = Testbed(TestbedConfig(seed=5))
    config = MptcpConfig(scheduler="qoe")
    size = 512 * 1024
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    tap = metrics_tap(testbed.sim.trace)
    assert tap is not None, "qoe scheduler must install the tap"
    assert connection.scheduler._tap is tap
    testbed.run(until=60.0)
    assert client.record.complete
    assert tap.path("wifi") is not None
    assert tap.path("wifi").srtt is not None
    assert tap.path("wifi").bytes_served > 0

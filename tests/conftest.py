"""Shared test fixtures: small deterministic networks and transfers."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

import pytest

from repro.core.coupling import RenoController
from repro.netsim.host import Host, Interface
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.endpoint import TcpConfig, TcpEndpoint, TcpListener


@dataclass
class MiniNet:
    """Two hosts joined by symmetric configurable access links."""

    sim: Simulator
    network: Network
    client: Host
    server: Host

    def run(self, until: float = 60.0) -> float:
        return self.sim.run(until=until)


def build_mininet(rate_bps: float = 10e6, prop_delay: float = 0.01,
                  buffer_bytes: int = 256 * 1024, loss_rate: float = 0.0,
                  seed: int = 1) -> MiniNet:
    """A clean two-host topology for protocol-level tests.

    The loss, if any, applies to the server's *egress* access link
    (data direction); ACKs travel lossless.
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng)
    client = Host(sim, "client")
    server = Host(sim, "server")
    clean = LinkConfig(rate_bps=rate_bps, prop_delay=prop_delay,
                       buffer_bytes=buffer_bytes)
    lossy = LinkConfig(rate_bps=rate_bps, prop_delay=prop_delay,
                       buffer_bytes=buffer_bytes, loss_rate=loss_rate)
    network.attach(client, Interface("client.wifi", "client.wifi"),
                   up=clean, down=clean)
    network.attach(server, Interface("server.eth0", "server.eth0"),
                   up=lossy, down=clean)
    return MiniNet(sim=sim, network=network, client=client, server=server)


@dataclass
class TransferHarness:
    """A plain-TCP echo-less transfer: server sends, client receives."""

    net: MiniNet
    client_ep: TcpEndpoint
    server_ep: Optional[TcpEndpoint]
    received: list

    def server(self) -> TcpEndpoint:
        assert self.server_ep is not None, "handshake has not completed"
        return self.server_ep


def start_transfer(net: MiniNet, size: int,
                   config: Optional[TcpConfig] = None,
                   client_config: Optional[TcpConfig] = None,
                   on_server: Optional[Callable[[TcpEndpoint], None]] = None,
                   ) -> TransferHarness:
    """Open a TCP connection; the server pushes ``size`` bytes on accept."""
    config = config or TcpConfig()
    harness = TransferHarness(net=net, client_ep=None, server_ep=None,
                              received=[])

    def accept(packet, host):
        segment = packet.segment
        endpoint = TcpEndpoint(
            net.sim, host, packet.dst, segment.dst_port,
            packet.src, segment.src_port, config, RenoController(),
            name="srv")
        harness.server_ep = endpoint

        def established():
            if on_server is not None:
                on_server(endpoint)
            if size:
                endpoint.send(size)
                endpoint.close()

        endpoint.on_established = established
        endpoint.accept(packet)

    net.server.bind_listener(80, TcpListener(accept))
    client_ep = TcpEndpoint(
        net.sim, net.client, "client.wifi", net.client.ephemeral_port(),
        "server.eth0", 80, client_config or config, RenoController(),
        name="cli")
    client_ep.on_receive = harness.received.append
    harness.client_ep = client_ep
    client_ep.connect()
    return harness


@pytest.fixture
def mininet() -> MiniNet:
    return build_mininet()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)

"""Tests for the shared receive buffer and OFO-delay accounting."""

import pytest

from repro.core.receive_buffer import ConnectionReceiveBuffer


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_in_order_arrival_has_zero_delay():
    clock = Clock()
    buffer = ConnectionReceiveBuffer(clock=clock)
    clock.now = 1.0
    buffer.offer(0, 1000, arrival_time=1.0, path="wifi")
    samples = buffer.metrics.samples
    assert len(samples) == 1
    assert samples[0].delay == 0.0
    assert buffer.metrics.in_order_fraction() == 1.0


def test_reorder_delay_measured_from_arrival_to_in_order():
    clock = Clock()
    buffer = ConnectionReceiveBuffer(clock=clock)
    clock.now = 1.0
    buffer.offer(1000, 2000, arrival_time=1.0, path="wifi")  # early packet
    clock.now = 1.25
    buffer.offer(0, 1000, arrival_time=1.25, path="att")  # fills the hole
    delays = {s.path: s.delay for s in buffer.metrics.samples}
    assert delays["att"] == 0.0
    assert delays["wifi"] == pytest.approx(0.25)


def test_delivery_callback_fires_in_dsn_order():
    buffer = ConnectionReceiveBuffer()
    delivered = []
    buffer.on_deliver = delivered.append
    buffer.offer(500, 600, arrival_time=0.0, path="wifi")
    buffer.offer(0, 500, arrival_time=0.1, path="att")
    assert delivered == [500, 100]
    assert buffer.metrics.delivered_bytes == 600


def test_bytes_by_path_counts_unique_bytes():
    buffer = ConnectionReceiveBuffer()
    buffer.offer(0, 1000, arrival_time=0.0, path="wifi")
    buffer.offer(0, 1000, arrival_time=0.1, path="att")  # pure duplicate
    assert buffer.metrics.bytes_by_path == {"wifi": 1000}


def test_free_space_shrinks_with_out_of_order_data():
    buffer = ConnectionReceiveBuffer(capacity=10_000)
    assert buffer.free_space() == 10_000
    buffer.offer(5000, 8000, arrival_time=0.0, path="wifi")
    assert buffer.free_space() == 7000
    buffer.offer(0, 5000, arrival_time=0.0, path="wifi")
    assert buffer.free_space() == 10_000  # drained to the application


def test_peak_occupancy_tracked():
    buffer = ConnectionReceiveBuffer()
    buffer.offer(1000, 3000, arrival_time=0.0, path="a")
    buffer.offer(4000, 5000, arrival_time=0.0, path="a")
    assert buffer.metrics.peak_occupancy == 3000


def test_rcv_nxt_is_the_data_ack_value():
    buffer = ConnectionReceiveBuffer()
    buffer.offer(0, 100, arrival_time=0.0, path="a")
    assert buffer.rcv_nxt == 100
    buffer.offer(200, 300, arrival_time=0.0, path="a")
    assert buffer.rcv_nxt == 100


def test_in_order_fraction_mixed():
    clock = Clock()
    buffer = ConnectionReceiveBuffer(clock=clock)
    buffer.offer(1000, 2000, arrival_time=0.0, path="w")
    clock.now = 0.5
    buffer.offer(0, 1000, arrival_time=0.5, path="c")
    # Two samples: one waited 0.5s, one did not wait.
    assert buffer.metrics.in_order_fraction() == pytest.approx(0.5)


def test_empty_buffer_in_order_fraction_is_one():
    buffer = ConnectionReceiveBuffer()
    assert buffer.metrics.in_order_fraction() == 1.0
    assert buffer.metrics.delays() == []

"""Unit tests for the path manager policy."""

import pytest

from repro.core.path_manager import PathManager


class FakeConnection:
    def __init__(self):
        self.opened = []

    def open_subflow(self, local, remote):
        self.opened.append((local, remote))


def test_start_opens_initial_on_default_path():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0")
    manager.start()
    assert connection.opened == [("client.wifi", "server.eth0")]


def test_joins_open_after_initial_established():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0")
    manager.start()
    manager.on_initial_established()
    assert connection.opened == [
        ("client.wifi", "server.eth0"), ("client.att", "server.eth0")]


def test_simultaneous_syn_opens_joins_at_start():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0", simultaneous_syn=True)
    manager.start()
    assert len(connection.opened) == 2


def test_add_addr_expands_to_cross_product():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0")
    manager.start()
    manager.on_initial_established()
    manager.on_add_addr(("server.eth1",))
    assert set(connection.opened) == {
        ("client.wifi", "server.eth0"), ("client.att", "server.eth0"),
        ("client.wifi", "server.eth1"), ("client.att", "server.eth1")}


def test_pairs_are_deduplicated():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0")
    manager.start()
    manager.on_initial_established()
    manager.on_initial_established()
    manager.on_add_addr(("server.eth0",))
    assert len(connection.opened) == 2


def test_max_subflows_cap():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0", max_subflows=3)
    manager.start()
    manager.on_initial_established()
    manager.on_add_addr(("server.eth1",))
    assert len(connection.opened) == 3


def test_requires_local_addresses():
    with pytest.raises(ValueError):
        PathManager(FakeConnection(), [], "server.eth0")


def test_duplicate_add_addr_remote_tracked_once():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi"], "server.eth0")
    manager.start()
    manager.on_add_addr(("server.eth1",))
    manager.on_add_addr(("server.eth1",))
    assert connection.opened == [
        ("client.wifi", "server.eth0"), ("client.wifi", "server.eth1")]

"""Unit tests for the path manager strategies."""

import pytest

from repro.core.path_manager import (
    NDiffPortsPathManager,
    PathManager,
    PrimaryBackupPathManager,
    make_path_manager,
    path_manager_names,
)


class FakeConnection:
    def __init__(self):
        self.opened = []

    def open_subflow(self, local, remote):
        self.opened.append((local, remote))


def test_start_opens_initial_on_default_path():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0")
    manager.start()
    assert connection.opened == [("client.wifi", "server.eth0")]


def test_joins_open_after_initial_established():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0")
    manager.start()
    manager.on_initial_established()
    assert connection.opened == [
        ("client.wifi", "server.eth0"), ("client.att", "server.eth0")]


def test_simultaneous_syn_opens_joins_at_start():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0", simultaneous_syn=True)
    manager.start()
    assert len(connection.opened) == 2


def test_add_addr_expands_to_cross_product():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0")
    manager.start()
    manager.on_initial_established()
    manager.on_add_addr(("server.eth1",))
    assert set(connection.opened) == {
        ("client.wifi", "server.eth0"), ("client.att", "server.eth0"),
        ("client.wifi", "server.eth1"), ("client.att", "server.eth1")}


def test_pairs_are_deduplicated():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0")
    manager.start()
    manager.on_initial_established()
    manager.on_initial_established()
    manager.on_add_addr(("server.eth0",))
    assert len(connection.opened) == 2


def test_max_subflows_cap():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi", "client.att"],
                          "server.eth0", max_subflows=3)
    manager.start()
    manager.on_initial_established()
    manager.on_add_addr(("server.eth1",))
    assert len(connection.opened) == 3


def test_requires_local_addresses():
    with pytest.raises(ValueError):
        PathManager(FakeConnection(), [], "server.eth0")


def test_duplicate_add_addr_remote_tracked_once():
    connection = FakeConnection()
    manager = PathManager(connection, ["client.wifi"], "server.eth0")
    manager.start()
    manager.on_add_addr(("server.eth1",))
    manager.on_add_addr(("server.eth1",))
    assert connection.opened == [
        ("client.wifi", "server.eth0"), ("client.wifi", "server.eth1")]


# ----------------------------------------------------------------------
# Strategy registry and the non-default strategies
# ----------------------------------------------------------------------

class FakeBackupConnection:
    """Fake accepting the ``backup`` keyword primary-backup passes."""

    def __init__(self):
        self.opened = []

    def open_subflow(self, local, remote, backup=False):
        self.opened.append((local, remote, backup))


def test_registry_names():
    assert path_manager_names() == ["fullmesh", "ndiffports",
                                    "primary-backup"]


def test_make_path_manager_builds_each_strategy():
    for spec, cls in (("fullmesh", PathManager),
                      ("primary-backup", PrimaryBackupPathManager),
                      ("ndiffports", NDiffPortsPathManager)):
        manager = make_path_manager(spec, FakeBackupConnection(),
                                    ["client.wifi"], "server.eth0")
        assert type(manager) is cls


def test_make_path_manager_parameterized_ndiffports():
    manager = make_path_manager("ndiffports:ports=3",
                                FakeBackupConnection(),
                                ["client.wifi"], "server.eth0")
    assert manager.ports == 3


def test_make_path_manager_rejects_unknown():
    with pytest.raises(ValueError):
        make_path_manager("mesh-of-meshes", FakeBackupConnection(),
                          ["client.wifi"], "server.eth0")
    with pytest.raises(ValueError):
        make_path_manager("fullmesh:ports=2", FakeBackupConnection(),
                          ["client.wifi"], "server.eth0")
    with pytest.raises(ValueError):
        make_path_manager("ndiffports:ports=0", FakeBackupConnection(),
                          ["client.wifi"], "server.eth0")


def test_primary_backup_opens_joins_in_backup_mode():
    connection = FakeBackupConnection()
    manager = PrimaryBackupPathManager(
        connection, ["client.wifi", "client.att"], "server.eth0")
    manager.start()
    manager.on_initial_established()
    # Every open carries backup=True; the connection layer itself keeps
    # the *initial* subflow regular regardless of the flag.
    assert connection.opened == [
        ("client.wifi", "server.eth0", True),
        ("client.att", "server.eth0", True)]


def test_ndiffports_opens_n_subflows_on_one_pair():
    connection = FakeBackupConnection()
    manager = NDiffPortsPathManager(
        connection, ["client.wifi", "client.att"], "server.eth0", ports=3)
    manager.start()
    assert len(connection.opened) == 1
    manager.on_initial_established()
    assert connection.opened == [
        ("client.wifi", "server.eth0", False)] * 3
    # Re-establishment must not duplicate the port set.
    manager.on_initial_established()
    assert len(connection.opened) == 3


def test_ndiffports_ignores_add_addr_and_other_interfaces():
    connection = FakeBackupConnection()
    manager = NDiffPortsPathManager(
        connection, ["client.wifi", "client.att"], "server.eth0", ports=2)
    manager.start()
    manager.on_initial_established()
    manager.on_add_addr(("server.eth1",))
    assert len(connection.opened) == 2
    assert all(pair[:2] == ("client.wifi", "server.eth0")
               for pair in connection.opened)


# ----------------------------------------------------------------------
# End to end over the testbed
# ----------------------------------------------------------------------

def _transfer(config, size=256 * 1024, seed=5, until=60.0):
    from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
    from repro.core.connection import MptcpConnection, MptcpListener
    from repro.testbed import Testbed, TestbedConfig

    testbed = Testbed(TestbedConfig(seed=seed))
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    testbed.run(until=until)
    return connection, client


def test_primary_backup_keeps_cellular_idle_end_to_end():
    from repro.core.connection import MptcpConfig
    connection, client = _transfer(MptcpConfig(
        path_manager="primary-backup"))
    assert client.record.complete
    cellular = [s for s in connection.subflows if s.path_name == "att"][0]
    assert cellular.backup
    shares = connection.receive_buffer.metrics.bytes_by_path
    assert shares.get("att", 0) == 0


def test_ndiffports_runs_n_subflows_over_wifi_end_to_end():
    from repro.core.connection import MptcpConfig
    connection, client = _transfer(MptcpConfig(
        path_manager="ndiffports:ports=3"))
    assert client.record.complete
    assert len(connection.subflows) == 3
    assert all(s.path_name == "wifi" for s in connection.subflows)

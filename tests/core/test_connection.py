"""Integration tests of the MPTCP connection over the testbed."""

import pytest

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
from repro.core.connection import MptcpConfig, MptcpConnection, MptcpListener
from repro.testbed import Testbed, TestbedConfig


def build(carrier="att", paths=2, config=None, size=256 * 1024, seed=1,
          jitter=False):
    """Testbed + MPTCP listener + client download, ready to run."""
    testbed = Testbed(TestbedConfig(
        carrier=carrier, server_interfaces=2 if paths == 4 else 1,
        seed=seed, environment_jitter=jitter))
    config = config or MptcpConfig()
    state = {}

    def on_connection(connection):
        state["server"] = connection
        HttpServerSession.fixed(connection, size)

    listener = MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                             server_addrs=testbed.server_addrs,
                             on_connection=on_connection)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    return testbed, connection, client, state, listener


def test_two_path_connection_opens_two_subflows():
    testbed, connection, client, state, _ = build(paths=2)
    testbed.run(until=30.0)
    assert client.record.complete
    assert len(connection.subflows) == 2
    assert {s.path_name for s in connection.subflows} == {"wifi", "att"}
    assert len(state["server"].subflows) == 2


def test_four_path_connection_opens_four_subflows():
    testbed, connection, client, state, _ = build(paths=4)
    testbed.run(until=30.0)
    assert client.record.complete
    assert len(connection.subflows) == 4
    pairs = {(s.endpoint.local_addr, s.endpoint.remote_addr)
             for s in connection.subflows}
    assert pairs == {
        ("client.wifi", "server.eth0"), ("client.att", "server.eth0"),
        ("client.wifi", "server.eth1"), ("client.att", "server.eth1")}


def test_initial_subflow_uses_default_path_first():
    testbed, connection, client, state, _ = build()
    testbed.run(until=30.0)
    initial = connection.subflows[0]
    assert initial.is_initial
    assert initial.path_name == "wifi"


def test_join_waits_for_initial_establishment_by_default():
    testbed, connection, client, state, _ = build()
    testbed.run(until=30.0)
    initial, join = connection.subflows
    assert initial.endpoint.stats.connect_started_at == 0.0
    # The MP_JOIN SYN leaves only after the first handshake completes.
    assert join.endpoint.stats.connect_started_at >= \
        initial.endpoint.stats.established_at


def test_simultaneous_syn_opens_both_at_once():
    config = MptcpConfig(simultaneous_syn=True)
    testbed, connection, client, state, _ = build(config=config)
    testbed.run(until=30.0)
    assert client.record.complete
    starts = [s.endpoint.stats.connect_started_at
              for s in connection.subflows]
    assert starts == [0.0, 0.0]


def test_download_delivers_exact_bytes():
    testbed, connection, client, state, _ = build(size=1024 * 1024)
    testbed.run(until=60.0)
    assert client.record.complete
    assert client.record.bytes_received >= 1024 * 1024


def test_data_fin_closes_connection_at_client():
    closed = []
    testbed, connection, client, state, _ = build(size=64 * 1024)
    # HttpClient replaced on_close? Attach ours too.
    connection.on_close = lambda: closed.append(testbed.sim.now)
    testbed.run(until=30.0)
    assert closed, "DATA_FIN must be delivered once the stream completes"


def test_traffic_split_recorded_per_path():
    testbed, connection, client, state, _ = build(size=2 * 1024 * 1024)
    testbed.run(until=60.0)
    shares = connection.receive_buffer.metrics.bytes_by_path
    assert sum(shares.values()) >= 2 * 1024 * 1024
    assert shares.get("wifi", 0) > 0
    assert shares.get("att", 0) > 0


def test_tiny_transfer_stays_on_wifi():
    testbed, connection, client, state, _ = build(size=8 * 1024)
    testbed.run(until=30.0)
    shares = connection.receive_buffer.metrics.bytes_by_path
    assert shares.get("att", 0) == 0


def test_server_allocates_dsn_contiguously():
    testbed, connection, client, state, _ = build(size=512 * 1024)
    testbed.run(until=60.0)
    server = state["server"]
    assert server.next_dsn == server.total_queued == 512 * 1024 + 0
    assert server.data_acked >= 512 * 1024


def test_bytes_allocated_sums_to_stream_length():
    testbed, connection, client, state, _ = build(size=512 * 1024)
    testbed.run(until=60.0)
    server = state["server"]
    assert sum(server.bytes_allocated.values()) == server.total_queued


def test_same_seed_is_deterministic():
    def run():
        testbed, connection, client, state, _ = build(
            size=512 * 1024, seed=77, jitter=True)
        testbed.run(until=60.0)
        return (client.record.completed_at,
                connection.receive_buffer.metrics.bytes_by_path)

    assert run() == run()


def test_unknown_join_token_is_parked_then_accepted():
    """With simultaneous SYN the JOIN can arrive before MP_CAPABLE."""
    config = MptcpConfig(simultaneous_syn=True)
    # Sprint has a huge base RTT; WiFi MP_CAPABLE still lands first, so
    # park-and-replay is exercised by swapping the default path order.
    testbed = Testbed(TestbedConfig(carrier="att", seed=3,
                                    environment_jitter=False))
    state = {}
    MptcpListener(
        testbed.sim, testbed.server, HTTP_PORT, config,
        server_addrs=testbed.server_addrs,
        on_connection=lambda c: (state.__setitem__("server", c),
                                 HttpServerSession.fixed(c, 65536)))
    # Default path = cellular (slower handshake): the WiFi JOIN's SYN
    # reaches the listener before the cellular MP_CAPABLE does.
    addrs = [testbed.cellular_addr, "client.wifi"]
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, 65536)
    client.start()
    connection.connect()
    testbed.run(until=30.0)
    assert client.record.complete
    assert len(state["server"].subflows) == 2


def test_penalization_disabled_by_default():
    config = MptcpConfig()
    assert config.penalization is False


def test_max_subflows_caps_paths():
    config = MptcpConfig(max_subflows=1)
    testbed, connection, client, state, _ = build(config=config,
                                                  size=64 * 1024)
    testbed.run(until=30.0)
    assert client.record.complete
    assert len(connection.subflows) == 1


def test_connect_requires_client_role():
    testbed = Testbed(TestbedConfig(seed=1))
    server_conn = MptcpConnection(testbed.sim, testbed.server, "server",
                                  1234, MptcpConfig(), token=1)
    with pytest.raises(RuntimeError):
        server_conn.connect()


def test_bad_role_rejected():
    testbed = Testbed(TestbedConfig(seed=1))
    with pytest.raises(ValueError):
        MptcpConnection(testbed.sim, testbed.client, "proxy", 1,
                        MptcpConfig(), token=1)

"""Tests for the reno / coupled / olia congestion controllers."""

import pytest

from repro.core.coupling import (
    CoupledController,
    OliaController,
    RenoController,
    make_controller,
)

MSS = 1448


class FakeFlow:
    """Minimal WindowedFlow for controller math tests."""

    def __init__(self, cwnd_packets: float, rtt: float,
                 ssthresh_packets: float = 0.0):
        self.mss = MSS
        self.cwnd = cwnd_packets * MSS
        self.ssthresh = ssthresh_packets * MSS
        self._rtt = rtt

    def smoothed_rtt(self, default: float = 0.5) -> float:
        return self._rtt

    @property
    def cwnd_packets(self) -> float:
        return self.cwnd / MSS


def test_make_controller_by_name():
    assert isinstance(make_controller("reno"), RenoController)
    assert isinstance(make_controller("coupled"), CoupledController)
    assert isinstance(make_controller("olia"), OliaController)


def test_make_controller_unknown_name():
    with pytest.raises(ValueError):
        make_controller("cubic")


def test_slow_start_grows_one_mss_per_mss_acked():
    controller = RenoController()
    flow = FakeFlow(cwnd_packets=10, rtt=0.05, ssthresh_packets=44)
    controller.attach(flow)
    controller.on_ack(flow, MSS)
    assert flow.cwnd == 11 * MSS


def test_slow_start_is_byte_counted():
    controller = RenoController()
    flow = FakeFlow(cwnd_packets=10, rtt=0.05, ssthresh_packets=44)
    controller.attach(flow)
    controller.on_ack(flow, 3 * MSS)  # stretch ACK: still at most 1 MSS
    assert flow.cwnd == 11 * MSS


def test_reno_congestion_avoidance_increase():
    controller = RenoController()
    flow = FakeFlow(cwnd_packets=20, rtt=0.05)  # ssthresh 0: always CA
    controller.attach(flow)
    before = flow.cwnd
    controller.on_ack(flow, MSS)
    # w += 1/w packets per packet acked.
    assert flow.cwnd == pytest.approx(before + MSS / 20)


def test_reno_full_window_of_acks_adds_about_one_mss():
    controller = RenoController()
    flow = FakeFlow(cwnd_packets=20, rtt=0.05)
    controller.attach(flow)
    before = flow.cwnd
    for _ in range(20):
        controller.on_ack(flow, MSS)
    assert flow.cwnd == pytest.approx(before + MSS, rel=0.05)


def test_coupled_single_flow_behaves_like_reno():
    """With one subflow, LIA's min() term reduces to 1/w."""
    coupled = CoupledController()
    reno = RenoController()
    flow_c = FakeFlow(cwnd_packets=20, rtt=0.05)
    flow_r = FakeFlow(cwnd_packets=20, rtt=0.05)
    coupled.attach(flow_c)
    reno.attach(flow_r)
    coupled.on_ack(flow_c, MSS)
    reno.on_ack(flow_r, MSS)
    assert flow_c.cwnd == pytest.approx(flow_r.cwnd)


def test_coupled_increase_never_exceeds_reno():
    """LIA is capped by the uncoupled increase on every path."""
    for rtts in ((0.03, 0.2), (0.1, 0.1), (0.02, 0.5)):
        for windows in ((10, 40), (25, 25), (5, 100)):
            coupled = CoupledController()
            flows = [FakeFlow(w, rtt) for w, rtt in zip(windows, rtts)]
            for flow in flows:
                coupled.attach(flow)
            for flow in flows:
                before = flow.cwnd
                coupled.on_ack(flow, MSS)
                uncoupled_increase = MSS * MSS / before
                assert flow.cwnd - before <= uncoupled_increase + 1e-9


def test_coupled_two_flows_grow_slower_than_two_renos():
    coupled = CoupledController()
    a = FakeFlow(20, 0.05)
    b = FakeFlow(20, 0.05)
    coupled.attach(a)
    coupled.attach(b)
    before = a.cwnd + b.cwnd
    for _ in range(40):
        coupled.on_ack(a, MSS)
        coupled.on_ack(b, MSS)
    coupled_growth = (a.cwnd + b.cwnd) - before
    reno = RenoController()
    c = FakeFlow(20, 0.05)
    reno.attach(c)
    single_before = c.cwnd
    for _ in range(40):
        reno.on_ack(c, MSS)
    single_growth = c.cwnd - single_before
    # Two coupled flows together grow about like ONE TCP, so their
    # total growth must be well below two independent Renos'.
    assert coupled_growth < 1.5 * single_growth


def test_olia_increase_is_nonnegative():
    olia = OliaController()
    fast = FakeFlow(30, 0.03)
    slow = FakeFlow(10, 0.3)
    olia.attach(fast)
    olia.attach(slow)
    olia.on_sent(fast, 50 * MSS)
    olia.on_sent(slow, 5 * MSS)
    olia.on_loss(fast)
    for flow in (fast, slow):
        before = flow.cwnd
        olia.on_ack(flow, MSS)
        assert flow.cwnd >= before


def test_olia_favors_best_path_not_largest_window():
    """alpha > 0 for best paths not holding the largest window."""
    olia = OliaController()
    large_window = FakeFlow(40, 0.1)
    good_but_small = FakeFlow(10, 0.1)
    olia.attach(large_window)
    olia.attach(good_but_small)
    # The small-window path transfers more between losses: best path.
    olia.on_sent(good_but_small, 1000 * MSS)
    olia.on_loss(good_but_small)
    olia.on_sent(good_but_small, 1000 * MSS)
    olia.on_sent(large_window, 10 * MSS)
    olia.on_loss(large_window)
    olia.on_sent(large_window, 10 * MSS)
    alphas = olia._alphas()
    assert alphas[id(good_but_small)] > 0
    assert alphas[id(large_window)] < 0
    assert sum(alphas.values()) == pytest.approx(0.0)


def test_olia_single_flow_alpha_zero():
    olia = OliaController()
    flow = FakeFlow(20, 0.05)
    olia.attach(flow)
    assert olia._alphas() == {id(flow): 0.0}


def test_detach_removes_flow_from_coupling():
    coupled = CoupledController()
    a = FakeFlow(20, 0.05)
    b = FakeFlow(20, 0.05)
    coupled.attach(a)
    coupled.attach(b)
    coupled.detach(b)
    assert coupled.flows == [a]
    # Behaves like a single flow again.
    reno_flow = FakeFlow(20, 0.05)
    reno = RenoController()
    reno.attach(reno_flow)
    coupled.on_ack(a, MSS)
    reno.on_ack(reno_flow, MSS)
    assert a.cwnd == pytest.approx(reno_flow.cwnd)


def test_attach_is_idempotent():
    controller = RenoController()
    flow = FakeFlow(10, 0.1)
    controller.attach(flow)
    controller.attach(flow)
    assert controller.flows == [flow]


def test_olia_detach_cleans_path_state():
    olia = OliaController()
    flow = FakeFlow(10, 0.1)
    olia.attach(flow)
    olia.on_sent(flow, MSS)
    olia.detach(flow)
    assert olia._paths == {}

"""Tests for backup-mode subflows (MP_JOIN B-bit / MP_PRIO).

Paasch et al. (cited in Section 7) evaluate MPTCP handover in "backup
mode", where the cellular subflow is established but idle until WiFi
fails.  These tests check that semantic end to end.
"""

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.testbed import Testbed, TestbedConfig
from repro.wireless.mobility import InterfaceOutage

MB = 1024 * 1024


def start(testbed, size, config):
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    return connection, client


def test_backup_subflow_is_established_but_idle():
    testbed = Testbed(TestbedConfig(seed=5))
    config = MptcpConfig(backup_paths=("att",))
    connection, client = start(testbed, 2 * MB, config)
    testbed.run(until=60.0)
    assert client.record.complete
    cellular = [s for s in connection.subflows if s.path_name == "att"][0]
    assert cellular.backup
    assert cellular.established or cellular.endpoint.state == "close_wait"
    shares = connection.receive_buffer.metrics.bytes_by_path
    assert shares.get("att", 0) == 0, "backup path must stay idle"
    assert shares.get("wifi", 0) >= 2 * MB


def test_server_learns_backup_flag_from_join():
    testbed = Testbed(TestbedConfig(seed=5))
    config = MptcpConfig(backup_paths=("att",))
    state = {}

    def on_connection(server_conn):
        state["server"] = server_conn
        HttpServerSession.fixed(server_conn, 64 * 1024)

    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=on_connection)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, 64 * 1024)
    client.start()
    connection.connect()
    testbed.run(until=30.0)
    server_cell = [s for s in state["server"].subflows
                   if s.path_name == "att"]
    assert server_cell and server_cell[0].backup


def test_backup_engages_when_wifi_fails():
    testbed = Testbed(TestbedConfig(seed=5))
    config = MptcpConfig(backup_paths=("att",))
    connection, client = start(testbed, 4 * MB, config)
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=0.8, up_at=None)
    manager = connection.path_manager
    outage.on_down.append(lambda: manager.on_interface_down("client.wifi"))
    testbed.run(until=120.0)
    assert client.record.complete
    shares = connection.receive_buffer.metrics.bytes_by_path
    assert shares.get("att", 0) > 3 * MB, \
        "the backup path must take over once WiFi is gone"


def test_initial_subflow_never_backup():
    """Only joins can be backup; the default path stays regular even if
    its technology is listed."""
    testbed = Testbed(TestbedConfig(seed=5))
    config = MptcpConfig(backup_paths=("wifi", "att"))
    connection, client = start(testbed, 64 * 1024, config)
    testbed.run(until=30.0)
    assert client.record.complete
    initial = connection.subflows[0]
    assert initial.path_name == "wifi" and not initial.backup

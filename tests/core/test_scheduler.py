"""Tests for the MPTCP packet schedulers."""

import pytest

from repro.core.scheduler import (
    BlestScheduler,
    CheapestFirstScheduler,
    LowestRttScheduler,
    QoeAdaptiveScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
    eligible_for_data,
    make_scheduler,
    parse_strategy,
    scheduler_names,
)


class FakeSubflow:
    def __init__(self, name, rtt, established=True, budget=True,
                 backup=False, index=None, path=None, cwnd=20_000):
        self.name = name
        self._rtt = rtt
        self.established = established
        self._budget = budget
        self.backup = backup
        self.index = index
        self.path_name = path if path is not None else name
        self._cwnd = cwnd

    def srtt(self):
        return self._rtt

    def can_send(self):
        return self.established and self._budget

    def cwnd_bytes(self):
        return self._cwnd

    def __repr__(self):
        return self.name


def flows(*subflows):
    """Assign persistent indices the way the connection does."""
    for index, subflow in enumerate(subflows):
        if subflow.index is None:
            subflow.index = index
    return list(subflows)


def test_make_scheduler_by_name():
    assert isinstance(make_scheduler("minrtt"), LowestRttScheduler)
    assert isinstance(make_scheduler("roundrobin"), RoundRobinScheduler)
    assert isinstance(make_scheduler("redundant"), RedundantScheduler)
    assert isinstance(make_scheduler("blest"), BlestScheduler)
    assert isinstance(make_scheduler("weighted"), WeightedScheduler)
    assert isinstance(make_scheduler("cheapest"), CheapestFirstScheduler)
    assert isinstance(make_scheduler("qoe"), QoeAdaptiveScheduler)


def test_make_scheduler_unknown():
    with pytest.raises(ValueError):
        make_scheduler("lia-scheduler")


def test_scheduler_names_lists_registry():
    assert "minrtt" in scheduler_names()
    assert "blest" in scheduler_names()


def test_parse_strategy_plain_and_parameterized():
    assert parse_strategy("blest") == ("blest", {})
    name, params = parse_strategy("weighted:wifi=2,att=1")
    assert name == "weighted"
    assert params == {"wifi": "2", "att": "1"}


def test_parse_strategy_rejects_malformed_params():
    with pytest.raises(ValueError):
        parse_strategy("weighted:wifi")


def test_make_scheduler_with_parameters():
    weighted = make_scheduler("weighted:wifi=3,att=1")
    assert weighted.weights == {"wifi": 3.0, "att": 1.0}
    blest = make_scheduler("blest:bias=1.5")
    assert blest.bias == 1.5
    cheapest = make_scheduler("cheapest:path=att,budget=1024")
    assert cheapest.cheap_path == "att" and cheapest.budget == 1024


def test_make_scheduler_rejects_params_on_plain_policies():
    with pytest.raises(ValueError):
        make_scheduler("minrtt:foo=1")


def test_minrtt_prefers_fastest_path():
    wifi = FakeSubflow("wifi", 0.03)
    cell = FakeSubflow("cell", 0.08)
    order = LowestRttScheduler().order(flows(cell, wifi))
    assert order == [wifi, cell]


def test_minrtt_skips_unestablished():
    wifi = FakeSubflow("wifi", 0.03)
    joining = FakeSubflow("cell", 0.01, established=False)
    order = LowestRttScheduler().order(flows(wifi, joining))
    assert order == [wifi]


def test_minrtt_stable_for_equal_rtts():
    a = FakeSubflow("a", 0.05)
    b = FakeSubflow("b", 0.05)
    assert LowestRttScheduler().order(flows(a, b)) == [a, b]


def test_roundrobin_rotates():
    scheduler = RoundRobinScheduler()
    a, b, c = (FakeSubflow(n, 0.05) for n in "abc")
    subflows = flows(a, b, c)
    assert scheduler.order(subflows)[0] is a
    assert scheduler.order(subflows)[0] is b
    assert scheduler.order(subflows)[0] is c
    assert scheduler.order(subflows)[0] is a


def test_roundrobin_covers_all_subflows_each_call():
    scheduler = RoundRobinScheduler()
    subflows = flows(*(FakeSubflow(n, 0.05) for n in "abc"))
    order = scheduler.order(subflows)
    assert sorted(s.name for s in order) == ["a", "b", "c"]


def test_roundrobin_empty():
    assert RoundRobinScheduler().order([]) == []


def test_roundrobin_rotation_survives_subflow_churn():
    """Regression: the old cursor indexed the *filtered* ready list, so
    a subflow dying mid-transfer made the rotation skip or double-serve
    paths.  Rotating by persistent subflow identity, killing ``b``
    right after it was served must hand the next turn to ``c``."""
    scheduler = RoundRobinScheduler()
    a, b, c = (FakeSubflow(n, 0.05) for n in "abc")
    subflows = flows(a, b, c)
    assert scheduler.order(subflows)[0] is a
    assert scheduler.order(subflows)[0] is b
    b.established = False  # dies after taking its turn
    assert scheduler.order(subflows)[0] is c, \
        "a dead subflow must not reset the rotation onto earlier paths"
    assert scheduler.order(subflows)[0] is a
    b.established = True  # reopened (same persistent identity)
    assert scheduler.order(subflows)[0] is b


def test_roundrobin_newly_established_subflow_waits_its_turn():
    scheduler = RoundRobinScheduler()
    a, b, c = (FakeSubflow(n, 0.05) for n in "abc")
    b.established = False
    subflows = flows(a, b, c)
    assert scheduler.order(subflows)[0] is a
    b.established = True  # joins mid-flow
    assert scheduler.order(subflows)[0] is b
    assert scheduler.order(subflows)[0] is c


def test_minrtt_denies_slow_path_while_fast_has_budget():
    wifi = FakeSubflow("wifi", 0.03, budget=True)
    cell = FakeSubflow("cell", 0.3)
    scheduler = LowestRttScheduler()
    assert not scheduler.admits(flows(wifi, cell), cell)
    assert scheduler.admits([wifi, cell], wifi)


def test_minrtt_admits_slow_path_once_fast_is_full():
    wifi = FakeSubflow("wifi", 0.03, budget=False)
    cell = FakeSubflow("cell", 0.3)
    assert LowestRttScheduler().admits(flows(wifi, cell), cell)


def test_minrtt_ignores_unestablished_competitors():
    joining = FakeSubflow("wifi", 0.03, established=False)
    cell = FakeSubflow("cell", 0.3)
    assert LowestRttScheduler().admits(flows(joining, cell), cell)


def test_minrtt_fast_backup_does_not_veto_regular_path():
    """Regression: a low-RTT *backup* subflow used to be counted as a
    preferred path even though ``Connection.allocate`` refuses to give
    backups data while a regular path is operational — so the only
    eligible path was denied and the transfer stalled."""
    backup = FakeSubflow("cell", 0.02, backup=True)
    regular = FakeSubflow("wifi", 0.2)
    assert LowestRttScheduler().admits(flows(backup, regular), regular)


def test_minrtt_backup_vetoes_once_it_is_the_last_resort():
    """With no regular sibling alive, the backup is eligible again and
    the normal lowest-SRTT preference applies to it."""
    backup = FakeSubflow("cell", 0.02, backup=True)
    slow_backup = FakeSubflow("wifi", 0.2, backup=True)
    assert not LowestRttScheduler().admits(
        flows(backup, slow_backup), slow_backup)


def test_eligible_for_data_mirrors_allocate_gate():
    regular = FakeSubflow("wifi", 0.05)
    backup = FakeSubflow("cell", 0.02, backup=True)
    subflows = flows(regular, backup)
    assert eligible_for_data(subflows, regular)
    assert not eligible_for_data(subflows, backup)
    regular.established = False
    assert eligible_for_data(subflows, backup)


def test_roundrobin_admits_everyone():
    wifi = FakeSubflow("wifi", 0.03, budget=True)
    cell = FakeSubflow("cell", 0.3)
    scheduler = RoundRobinScheduler()
    assert scheduler.admits(flows(wifi, cell), cell)
    assert scheduler.admits([wifi, cell], wifi)


def test_redundant_duplicates_and_orders_by_rtt():
    scheduler = RedundantScheduler()
    assert scheduler.duplicates
    wifi = FakeSubflow("wifi", 0.03)
    cell = FakeSubflow("cell", 0.3)
    assert scheduler.order(flows(cell, wifi)) == [wifi, cell]
    assert scheduler.admits([wifi, cell], cell)


# ----------------------------------------------------------------------
# Weighted
# ----------------------------------------------------------------------


def test_weighted_prefers_underweight_path():
    scheduler = WeightedScheduler({"wifi": 3, "att": 1})
    wifi = FakeSubflow("wifi", 0.03)
    att = FakeSubflow("att", 0.08)
    subflows = flows(wifi, att)
    # Nothing served yet: deficits tie at 0, SRTT breaks the tie.
    assert scheduler.order(subflows)[0] is wifi
    scheduler.on_allocated(wifi, 3000)
    # wifi deficit 1000, att 0: att is more underweight now.
    assert scheduler.order(subflows)[0] is att
    assert not scheduler.admits(subflows, wifi)
    assert scheduler.admits(subflows, att)
    scheduler.on_allocated(att, 2000)
    assert scheduler.order(subflows)[0] is wifi


def test_weighted_converges_to_configured_share():
    scheduler = WeightedScheduler({"wifi": 3, "att": 1})
    wifi = FakeSubflow("wifi", 0.03)
    att = FakeSubflow("att", 0.08)
    subflows = flows(wifi, att)
    for _ in range(400):
        chosen = scheduler.order(subflows)[0]
        scheduler.on_allocated(chosen, 1448)
    served = scheduler._served
    assert served["wifi"] / served["att"] == pytest.approx(3.0, rel=0.1)


def test_weighted_admits_when_preferred_path_has_no_budget():
    scheduler = WeightedScheduler({"wifi": 3, "att": 1})
    wifi = FakeSubflow("wifi", 0.03, budget=False)
    att = FakeSubflow("att", 0.08)
    subflows = flows(wifi, att)
    scheduler.on_allocated(att, 5000)  # att far ahead of its share
    assert scheduler.admits(subflows, att), \
        "a cwnd-limited underweight path must not block the other"


def test_weighted_rejects_nonpositive_weight():
    with pytest.raises(ValueError):
        WeightedScheduler({"wifi": 0})


# ----------------------------------------------------------------------
# BLEST / ECF
# ----------------------------------------------------------------------


def test_blest_behaves_like_minrtt_while_fast_path_open():
    scheduler = BlestScheduler()
    wifi = FakeSubflow("wifi", 0.03, budget=True)
    cell = FakeSubflow("cell", 0.3)
    subflows = flows(wifi, cell)
    assert scheduler.order(subflows) == [wifi, cell]
    assert not scheduler.admits(subflows, cell, window=10**6)
    assert scheduler.admits(subflows, wifi, window=10**6)


def test_blest_refuses_slow_path_when_send_would_block_fast_window():
    """The fast path is momentarily cwnd-limited, but the whole
    remaining window fits in what it will drain within one slow-path
    RTT: sending on the slow path would block the fast one."""
    scheduler = BlestScheduler()
    wifi = FakeSubflow("wifi", 0.03, budget=False, cwnd=50_000)
    cell = FakeSubflow("cell", 0.3)
    subflows = flows(wifi, cell)
    # Estimate: 50_000 * (0.3 / 0.03) = 500_000 bytes drained.
    assert not scheduler.admits(subflows, cell, window=100_000)
    assert scheduler.admits(subflows, cell, window=2_000_000), \
        "a window far beyond the fast path's drain rate must spill"


def test_blest_without_window_estimate_degrades_to_minrtt():
    scheduler = BlestScheduler()
    wifi = FakeSubflow("wifi", 0.03, budget=False)
    cell = FakeSubflow("cell", 0.3)
    assert scheduler.admits(flows(wifi, cell), cell)


def test_blest_bias_scales_the_refusal():
    wifi = FakeSubflow("wifi", 0.03, budget=False, cwnd=50_000)
    cell = FakeSubflow("cell", 0.3)
    subflows = flows(wifi, cell)
    window = 600_000  # just above the unbiased 500_000 estimate
    assert BlestScheduler(bias=1.0).admits(subflows, cell, window=window)
    assert not BlestScheduler(bias=1.5).admits(subflows, cell,
                                               window=window)


def test_blest_ignores_ineligible_backup_as_fast_path():
    backup = FakeSubflow("cell", 0.02, backup=True)
    regular = FakeSubflow("wifi", 0.2)
    assert BlestScheduler().admits(flows(backup, regular), regular,
                                   window=10**6)


# ----------------------------------------------------------------------
# Cheapest-first
# ----------------------------------------------------------------------


def test_cheapest_prefers_cheap_path_within_budget():
    scheduler = CheapestFirstScheduler(path="att", budget=10_000)
    wifi = FakeSubflow("wifi", 0.03)
    att = FakeSubflow("att", 0.3)
    subflows = flows(wifi, att)
    assert scheduler.order(subflows)[0] is att
    assert scheduler.admits(subflows, att)
    assert not scheduler.admits(subflows, wifi), \
        "the metered path only takes spill-over while the budget lasts"


def test_cheapest_spills_when_cheap_path_has_no_budget():
    scheduler = CheapestFirstScheduler(path="att", budget=10_000)
    wifi = FakeSubflow("wifi", 0.03)
    att = FakeSubflow("att", 0.3, budget=False)
    subflows = flows(wifi, att)
    assert scheduler.admits(subflows, wifi)


def test_cheapest_flips_roles_once_budget_spent():
    scheduler = CheapestFirstScheduler(path="att", budget=10_000)
    wifi = FakeSubflow("wifi", 0.03)
    att = FakeSubflow("att", 0.3)
    subflows = flows(wifi, att)
    scheduler.on_allocated(att, 10_000)
    assert not scheduler.budget_left
    assert scheduler.order(subflows)[0] is wifi
    assert scheduler.admits(subflows, wifi)
    assert not scheduler.admits(subflows, att), \
        "after the cap the cheap path becomes the last resort"
    att_last = FakeSubflow("att", 0.3)
    wifi.established = False
    assert scheduler.admits(flows(wifi, att_last), att_last)


def test_cheapest_defaults_to_initial_subflow_path():
    scheduler = CheapestFirstScheduler()
    wifi = FakeSubflow("wifi", 0.03, index=0)
    att = FakeSubflow("att", 0.3, index=1)
    assert scheduler._is_cheap(wifi) and not scheduler._is_cheap(att)


def test_cheapest_only_charges_cheap_path_bytes():
    scheduler = CheapestFirstScheduler(path="att", budget=10_000)
    wifi = FakeSubflow("wifi", 0.03)
    att = FakeSubflow("att", 0.3)
    flows(wifi, att)
    scheduler.on_allocated(wifi, 50_000)
    assert scheduler.budget_left
    scheduler.on_allocated(att, 9_999)
    assert scheduler.budget_left
    scheduler.on_allocated(att, 1)
    assert not scheduler.budget_left


# ----------------------------------------------------------------------
# QoE-adaptive (degenerate/unit paths; plumbing covered in
# tests/obs/test_pathmetrics.py and the scheduler-lab tests)
# ----------------------------------------------------------------------


def test_qoe_without_attachment_behaves_like_minrtt():
    scheduler = QoeAdaptiveScheduler()
    wifi = FakeSubflow("wifi", 0.03)
    cell = FakeSubflow("cell", 0.3)
    subflows = flows(wifi, cell)
    assert scheduler.order(subflows) == [wifi, cell]
    assert not scheduler.admits(subflows, cell)
    assert scheduler.admits(subflows, wifi)
    assert scheduler.policy == "balanced"


def test_qoe_is_flagged_as_needing_path_metrics():
    assert QoeAdaptiveScheduler.needs_path_metrics
    assert not LowestRttScheduler.needs_path_metrics

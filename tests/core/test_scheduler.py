"""Tests for the MPTCP packet schedulers."""

import pytest

from repro.core.scheduler import (
    LowestRttScheduler,
    RoundRobinScheduler,
    make_scheduler,
)


class FakeSubflow:
    def __init__(self, name, rtt, established=True, budget=True):
        self.name = name
        self._rtt = rtt
        self.established = established
        self._budget = budget

    def srtt(self):
        return self._rtt

    def can_send(self):
        return self.established and self._budget

    def __repr__(self):
        return self.name


def test_make_scheduler_by_name():
    assert isinstance(make_scheduler("minrtt"), LowestRttScheduler)
    assert isinstance(make_scheduler("roundrobin"), RoundRobinScheduler)


def test_make_scheduler_unknown():
    with pytest.raises(ValueError):
        make_scheduler("blest")


def test_minrtt_prefers_fastest_path():
    wifi = FakeSubflow("wifi", 0.03)
    cell = FakeSubflow("cell", 0.08)
    order = LowestRttScheduler().order([cell, wifi])
    assert order == [wifi, cell]


def test_minrtt_skips_unestablished():
    wifi = FakeSubflow("wifi", 0.03)
    joining = FakeSubflow("cell", 0.01, established=False)
    order = LowestRttScheduler().order([wifi, joining])
    assert order == [wifi]


def test_minrtt_stable_for_equal_rtts():
    a = FakeSubflow("a", 0.05)
    b = FakeSubflow("b", 0.05)
    assert LowestRttScheduler().order([a, b]) == [a, b]


def test_roundrobin_rotates():
    scheduler = RoundRobinScheduler()
    a, b, c = (FakeSubflow(n, 0.05) for n in "abc")
    subflows = [a, b, c]
    assert scheduler.order(subflows)[0] is a
    assert scheduler.order(subflows)[0] is b
    assert scheduler.order(subflows)[0] is c
    assert scheduler.order(subflows)[0] is a


def test_roundrobin_covers_all_subflows_each_call():
    scheduler = RoundRobinScheduler()
    subflows = [FakeSubflow(n, 0.05) for n in "abc"]
    order = scheduler.order(subflows)
    assert sorted(s.name for s in order) == ["a", "b", "c"]


def test_roundrobin_empty():
    assert RoundRobinScheduler().order([]) == []


def test_minrtt_denies_slow_path_while_fast_has_budget():
    wifi = FakeSubflow("wifi", 0.03, budget=True)
    cell = FakeSubflow("cell", 0.3)
    scheduler = LowestRttScheduler()
    assert not scheduler.admits([wifi, cell], cell)
    assert scheduler.admits([wifi, cell], wifi)


def test_minrtt_admits_slow_path_once_fast_is_full():
    wifi = FakeSubflow("wifi", 0.03, budget=False)
    cell = FakeSubflow("cell", 0.3)
    assert LowestRttScheduler().admits([wifi, cell], cell)


def test_minrtt_ignores_unestablished_competitors():
    joining = FakeSubflow("wifi", 0.03, established=False)
    cell = FakeSubflow("cell", 0.3)
    assert LowestRttScheduler().admits([joining, cell], cell)


def test_roundrobin_admits_everyone():
    wifi = FakeSubflow("wifi", 0.03, budget=True)
    cell = FakeSubflow("cell", 0.3)
    scheduler = RoundRobinScheduler()
    assert scheduler.admits([wifi, cell], cell)
    assert scheduler.admits([wifi, cell], wifi)

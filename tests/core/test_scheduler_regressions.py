"""End-to-end regressions for the scheduler-admission bugs.

Three bugs surfaced by the scheduler lab, each pinned here against the
full testbed (the unit-level contracts live in ``test_scheduler.py``):

1. A *backup* subflow with a lower SRTT than the regular path used to
   stall the transfer: ``LowestRttScheduler.admits`` counted the
   backup as the preferred competitor, while ``Connection.allocate``
   refuses to serve a backup when a regular path is available --
   nobody ever sent.
2. Round-robin rotation used to drift when the ready set churned
   (the rotation index pointed into the *filtered* list).
3. The redundant scheduler's duplication queue used to key targets by
   ``id()`` and never purge entries for dead subflows.
"""

from dataclasses import replace

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.testbed import Testbed, TestbedConfig
from repro.wireless.mobility import InterfaceOutage
from repro.wireless.profiles import ATT_LTE, HOME_WIFI

KB = 1024
MS = 1e-3

#: The stall scenario: the default (regular) path is much slower than
#: the cellular path, and the cellular path is configured as backup.
SLOW_WIFI = replace(HOME_WIFI, prop_delay=80 * MS)
FAST_CELL = replace(ATT_LTE, prop_delay=4 * MS)


def start(testbed, size, config):
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    return connection, client


def test_fast_backup_does_not_stall_transfer():
    """Bug 1: a lower-SRTT backup subflow must not veto the regular
    path it is not allowed to replace."""
    testbed = Testbed(TestbedConfig(seed=11, wifi_profile=SLOW_WIFI,
                                    cell_profile=FAST_CELL))
    config = MptcpConfig(backup_paths=("att",))
    connection, client = start(testbed, 512 * KB, config)
    testbed.run(until=60.0)
    assert client.record.complete, \
        "transfer stalled: the fast backup vetoed the slow regular path"
    shares = connection.receive_buffer.metrics.bytes_by_path
    assert shares.get("att", 0) == 0, "backup path must stay idle"
    assert shares.get("wifi", 0) >= 512 * KB


def test_fast_backup_still_engages_on_wifi_failure():
    """The admission fix must not break handover: once the regular
    path dies, the fast backup is the last resort and serves."""
    testbed = Testbed(TestbedConfig(seed=11, wifi_profile=SLOW_WIFI,
                                    cell_profile=FAST_CELL))
    config = MptcpConfig(backup_paths=("att",))
    connection, client = start(testbed, 512 * KB, config)
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=0.6, up_at=None)
    manager = connection.path_manager
    outage.on_down.append(lambda: manager.on_interface_down("client.wifi"))
    # Failure detection is RTO-backoff driven; the 80 ms path needs a
    # while to give up.
    testbed.run(until=120.0)
    assert client.record.complete
    shares = connection.receive_buffer.metrics.bytes_by_path
    assert shares.get("att", 0) > 0, "backup must engage after the outage"


def test_roundrobin_completes_through_subflow_churn():
    """Bug 2: round-robin must keep serving every live subflow when one
    path dies mid-transfer."""
    testbed = Testbed(TestbedConfig(seed=3))
    config = MptcpConfig(scheduler="roundrobin")
    connection, client = start(testbed, 2048 * KB, config)
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=0.5, up_at=None)
    manager = connection.path_manager
    outage.on_down.append(lambda: manager.on_interface_down("client.wifi"))
    testbed.run(until=120.0)
    assert client.record.complete
    shares = connection.receive_buffer.metrics.bytes_by_path
    assert shares.get("att", 0) > 0


def test_redundant_scheduler_survives_path_failure():
    """Bug 3: duplication-queue entries targeting a dead subflow must
    be dropped, not served to whatever reuses the slot."""
    testbed = Testbed(TestbedConfig(seed=3))
    config = MptcpConfig(scheduler="redundant")
    connection, client = start(testbed, 2048 * KB, config)
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=0.5, up_at=None)
    manager = connection.path_manager
    outage.on_down.append(lambda: manager.on_interface_down("client.wifi"))
    testbed.run(until=120.0)
    assert client.record.complete
    dead = [s for s in connection.subflows if s.path_name == "wifi"]
    for entry in connection._duplication_queue:
        assert all(entry[2] != s.index for s in dead), \
            "stale duplication entries must be purged on subflow failure"

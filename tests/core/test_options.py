"""Tests for MPTCP option value objects."""

import pytest

from repro.core.options import DssMapping, MptcpOptions


def test_dss_mapping_translation():
    mapping = DssMapping(dsn=1000, ssn=1, length=500)
    assert mapping.dsn_for(1) == 1000
    assert mapping.dsn_for(251) == 1250
    assert mapping.dsn_for(501) == 1500  # end boundary allowed


def test_dss_mapping_rejects_out_of_range():
    mapping = DssMapping(dsn=1000, ssn=100, length=50)
    with pytest.raises(ValueError):
        mapping.dsn_for(99)
    with pytest.raises(ValueError):
        mapping.dsn_for(151)


def test_dss_mapping_ends():
    mapping = DssMapping(dsn=10, ssn=20, length=5)
    assert mapping.dsn_end == 15
    assert mapping.ssn_end == 25


def test_options_are_immutable():
    options = MptcpOptions(mp_capable=True, token=7)
    with pytest.raises(AttributeError):
        options.token = 8


def test_options_repr_mentions_contents():
    options = MptcpOptions(mp_join=True, token=3,
                           dss=DssMapping(0, 1, 10), data_ack=5)
    text = repr(options)
    assert "MP_JOIN" in text
    assert "DSS" in text
    assert "DATA_ACK=5" in text
    assert "MP_CAPABLE" not in text


def test_dss_mapping_one_past_end_is_the_range_end():
    """Receivers translate half-open [start, end) delivered runs; the
    ``end`` of a run covering the whole mapping is exactly one past the
    last mapped byte and must still translate (to ``dsn_end``)."""
    mapping = DssMapping(dsn=1000, ssn=1, length=500)
    assert mapping.dsn_for(mapping.ssn_end) == mapping.dsn_end
    with pytest.raises(ValueError):
        mapping.dsn_for(mapping.ssn_end + 1)


def test_mp_fail_wire_length():
    # MP_FAIL is 12 bytes on the wire (RFC 6824 Section 3.6).
    assert MptcpOptions(mp_fail=True).wire_length() == 12
    assert MptcpOptions(mp_fail=True, data_ack=5).wire_length() == 20

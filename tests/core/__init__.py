"""Test package."""

"""Unit tests for connection-level reinjection bookkeeping."""


from repro.core.connection import MptcpConfig, MptcpConnection
from repro.core.subflow import Subflow
from repro.sim.engine import Simulator
from repro.netsim.host import Host


class FakeEndpoint:
    """Just enough endpoint for allocation-path unit tests."""

    def __init__(self, srtt=0.05, budget=True):
        self.state = "established"
        self._srtt = srtt
        self._budget = budget
        self.cwnd = 100_000.0
        self.flight_bytes = 0 if budget else 100_000
        self.pumped = 0

    def smoothed_rtt(self, default=0.5):
        return self._srtt

    def pump(self):
        self.pumped += 1


def make_connection():
    sim = Simulator()
    host = Host(sim, "server")
    connection = MptcpConnection(sim, host, "server", 1234,
                                 MptcpConfig(), token=1)
    return connection


def add_subflow(connection, name, srtt=0.05, budget=True, backup=False):
    subflow = Subflow(connection, name, is_initial=not connection.subflows,
                      backup=backup)
    subflow.endpoint = FakeEndpoint(srtt=srtt, budget=budget)
    connection.subflows.append(subflow)
    subflow.index = len(connection.subflows) - 1
    return subflow


def test_allocation_tracks_outstanding_ranges():
    connection = make_connection()
    wifi = add_subflow(connection, "wifi")
    connection.send(5000)
    allocation = connection.allocate(wifi, 1448)
    assert allocation == (0, 1448)
    assert connection._outstanding[wifi.index] == [[0, 1448, False]]


def test_reclaim_queues_unacked_ranges_for_other_paths():
    connection = make_connection()
    wifi = add_subflow(connection, "wifi", srtt=0.02)
    cell = add_subflow(connection, "att", srtt=0.2, budget=False)
    connection.send(5000)
    connection.allocate(wifi, 1448)
    connection.allocate(wifi, 1448)
    connection.on_subflow_rto(wifi)
    # Both ranges reclaimed, excluded from the sick path.
    assert len(connection._reinjection_queue) == 2
    served = connection._serve_reinjection(cell, 1448)
    assert served == (0, 1448)
    denied = connection._serve_reinjection(wifi, 1448)
    assert denied is None  # never back onto the path that timed out


def test_reclaim_skips_already_acked_data():
    connection = make_connection()
    wifi = add_subflow(connection, "wifi", srtt=0.02)
    add_subflow(connection, "att", srtt=0.2, budget=False)
    connection.send(5000)
    connection.allocate(wifi, 1448)
    connection.data_acked = 1448
    connection._prune_outstanding()
    connection.on_subflow_rto(wifi)
    assert connection._reinjection_queue == []


def test_reclaim_is_idempotent():
    connection = make_connection()
    wifi = add_subflow(connection, "wifi", srtt=0.02)
    add_subflow(connection, "att", srtt=0.2, budget=False)
    connection.send(5000)
    connection.allocate(wifi, 1448)
    connection.on_subflow_rto(wifi)
    connection.on_subflow_rto(wifi)  # a second RTO must not duplicate
    assert len(connection._reinjection_queue) == 1


def test_no_reinjection_without_alternative_path():
    connection = make_connection()
    wifi = add_subflow(connection, "wifi")
    connection.send(5000)
    connection.allocate(wifi, 1448)
    connection.on_subflow_rto(wifi)
    assert connection._reinjection_queue == []


def test_reinjection_served_before_new_data():
    connection = make_connection()
    # WiFi has no window budget, so minRTT admission lets the
    # cellular path take both the reclaimed range and fresh data.
    wifi = add_subflow(connection, "wifi", srtt=0.02, budget=False)
    cell = add_subflow(connection, "att", srtt=0.2)
    connection.send(10_000)
    connection.allocate(wifi, 1448)   # dsn 0-1448
    connection.on_subflow_rto(wifi)
    allocation = connection.allocate(cell, 1448)
    assert allocation == (0, 1448), "reclaimed range comes first"
    fresh = connection.allocate(cell, 1448)
    assert fresh is not None and fresh[0] == 1448


def test_partial_reinjection_serving():
    connection = make_connection()
    wifi = add_subflow(connection, "wifi", srtt=0.02)
    cell = add_subflow(connection, "att", srtt=0.2)
    connection.send(10_000)
    connection.allocate(wifi, 4000)
    connection.on_subflow_rto(wifi)
    first = connection._serve_reinjection(cell, 1500)
    second = connection._serve_reinjection(cell, 1500)
    third = connection._serve_reinjection(cell, 1500)
    assert first == (0, 1500)
    assert second == (1500, 1500)
    assert third == (3000, 1000)
    assert connection._serve_reinjection(cell, 1500) is None


def test_reinjected_bytes_counted_separately():
    connection = make_connection()
    wifi = add_subflow(connection, "wifi", srtt=0.02)
    cell = add_subflow(connection, "att", srtt=0.2)
    connection.send(5000)
    connection.allocate(wifi, 1448)
    connection.on_subflow_rto(wifi)
    connection._serve_reinjection(cell, 1448)
    assert connection.bytes_reinjected == {"att": 1448}
    assert connection.bytes_allocated == {"wifi": 1448}


def test_backup_path_denied_while_regular_alive():
    connection = make_connection()
    add_subflow(connection, "wifi", srtt=0.02)
    backup = add_subflow(connection, "att", srtt=0.2, backup=True)
    connection.send(5000)
    assert connection.allocate(backup, 1448) is None


def test_backup_path_serves_once_regular_fails():
    connection = make_connection()
    wifi = add_subflow(connection, "wifi", srtt=0.02)
    backup = add_subflow(connection, "att", srtt=0.2, backup=True)
    connection.send(5000)
    wifi.endpoint.state = "failed"
    assert connection.allocate(backup, 1448) == (0, 1448)

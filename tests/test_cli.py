"""Tests for the command-line interface."""

import pytest

from repro.cli import _artifacts, _build_campaign, main
from repro.experiments import scenarios
from repro.wireless.profiles import TimeOfDay


def test_list_prints_every_artifact(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig2", "fig8", "fig11", "fig13", "tab2", "tab6"):
        assert name in out


def test_unknown_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_artifact_registry_covers_paper():
    names = set(_artifacts())
    figures = {f"fig{n}" for n in range(2, 14)}
    tables = {"tab2", "tab3", "tab4", "tab5", "tab6"}
    assert figures <= names
    assert tables <= names


class Args:
    def __init__(self, reps=2, full=False, seed=2013):
        self.reps = reps
        self.full = full
        self.seed = seed


def test_build_campaign_quick_defaults():
    artifact = _artifacts()["fig2"]
    spec = _build_campaign(artifact, Args())
    assert spec.repetitions == 2
    assert spec.periods == scenarios.QUICK_PERIODS
    assert spec.base_seed == 2013


def test_build_campaign_full_uses_all_periods():
    artifact = _artifacts()["fig2"]
    spec = _build_campaign(artifact, Args(full=True))
    assert set(spec.periods) == set(TimeOfDay)


def test_build_campaign_fig11_full_is_512mb():
    artifact = _artifacts()["fig11"]
    quick = _build_campaign(artifact, Args())
    assert quick.sizes == (32 * scenarios.MB,)
    full = _build_campaign(artifact, Args(full=True))
    assert full.sizes == (512 * scenarios.MB,)


def test_run_small_artifact_end_to_end(capsys):
    """fig8 with 1 rep is the cheapest full CLI path (6 downloads)."""
    assert main(["fig8", "--reps", "1", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8" in out
    assert "simultaneous" in out
    assert "delayed" in out


def test_run_campaign_from_file(tmp_path, capsys):
    import json

    path = tmp_path / "campaign.json"
    path.write_text(json.dumps({
        "name": "cli-demo",
        "repetitions": 1,
        "periods": ["night"],
        "sizes": ["8 KB"],
        "flows": [{"mode": "sp", "interface": "wifi"}],
    }))
    assert main(["run-campaign", "--file", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Custom campaign: cli-demo" in out
    assert "SP-WiFi" in out


def test_jobs_and_resume_flags(tmp_path, capsys):
    import json

    path = tmp_path / "campaign.json"
    path.write_text(json.dumps({
        "name": "cli-par",
        "repetitions": 1,
        "periods": ["night"],
        "sizes": ["8 KB", "32 KB"],
        "flows": [{"mode": "sp", "interface": "wifi"}],
    }))
    journal = tmp_path / "journal.jsonl"
    argv = ["run-campaign", "--file", str(path), "--jobs", "2",
            "--resume", str(journal)]
    assert main(argv) == 0
    assert journal.exists()
    content = journal.read_text()
    assert len(content.splitlines()) == 2
    # Re-invoking resumes from the journal: nothing is recomputed,
    # so the journal is byte-identical afterwards.
    assert main(argv) == 0
    assert journal.read_text() == content
    capsys.readouterr()


def test_run_campaign_requires_file():
    with pytest.raises(SystemExit):
        main(["run-campaign"])


def test_csv_export(tmp_path, capsys):
    assert main(["fig8", "--reps", "1", "--csv", str(tmp_path)]) == 0
    files = list(tmp_path.glob("fig8_*.csv"))
    assert files, "CSV must be exported"
    header = files[0].read_text().splitlines()[0]
    assert "size" in header

"""Tests for repro.perf: instrumentation and cProfile integration."""

import pstats
import tracemalloc

from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement
from repro.perf import (
    Instrumentation,
    NULL_INSTRUMENTATION,
    NullInstrumentation,
    profile_to,
    render_profile,
)
from repro.sim.engine import Simulator

KB = 1024


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------

def test_phases_accumulate_across_reentry():
    inst = Instrumentation()
    with inst.phase("work"):
        pass
    first = inst.phases["work"]
    with inst.phase("work"):
        pass
    assert inst.phases["work"] > first
    assert set(inst.phases) == {"work"}


def test_counters_accumulate():
    inst = Instrumentation()
    inst.add("packets")
    inst.add("packets", 4)
    assert inst.counters["packets"] == 5


def test_observe_simulator_folds_engine_counters():
    sim = Simulator()
    for index in range(10):
        sim.schedule(0.001 * (index + 1), lambda: None)
    sim.run()
    inst = Instrumentation()
    inst.observe_simulator(sim)
    assert inst.counters["events_processed"] == 10
    assert inst.counters["events_scheduled"] == 10
    assert inst.counters["peak_heap"] == sim.peak_heap
    # A second simulator accumulates, except the high-water mark.
    inst.observe_simulator(sim)
    assert inst.counters["events_processed"] == 20
    assert inst.counters["peak_heap"] == sim.peak_heap


def test_events_per_sec_requires_phase_and_events():
    inst = Instrumentation()
    assert inst.events_per_sec() is None
    inst.phases["simulate"] = 2.0
    inst.counters["events_processed"] = 1000
    assert inst.events_per_sec() == 500.0


def test_report_is_json_ready():
    inst = Instrumentation()
    with inst.phase("simulate"):
        pass
    inst.counters["events_processed"] = 4
    report = inst.report()
    assert set(report) >= {"phases_s", "counters"}
    assert report["counters"]["events_processed"] == 4
    assert "tracemalloc" not in report


def test_tracemalloc_is_opt_in():
    was_tracing = tracemalloc.is_tracing()
    inst = Instrumentation(trace_allocations=True)
    try:
        assert tracemalloc.is_tracing()
        data = [0] * 1000
        report = inst.report()
        assert report["tracemalloc"]["peak_bytes"] > 0
        del data
    finally:
        inst.stop()
    assert tracemalloc.is_tracing() == was_tracing


def test_null_instrumentation_is_inert():
    assert not NULL_INSTRUMENTATION.enabled
    with NULL_INSTRUMENTATION.phase("anything"):
        NULL_INSTRUMENTATION.add("counter", 5)
    NULL_INSTRUMENTATION.observe_simulator(object())
    assert NULL_INSTRUMENTATION.report() == {}
    assert isinstance(NULL_INSTRUMENTATION, NullInstrumentation)


def test_measurement_accepts_instrumentation():
    inst = Instrumentation()
    result = Measurement(FlowSpec.single_path("wifi"), 64 * KB,
                         seed=3).run(instrumentation=inst)
    assert result.completed
    assert set(inst.phases) >= {"setup", "simulate", "extract"}
    assert inst.counters["events_processed"] > 0
    assert inst.events_per_sec() > 0


def test_batch_telemetry_surfaces_in_profile():
    """Satellite: the vectorized core's batch counters (batched
    deliveries, mean burst size, arena occupancy high-water) reach the
    ``--profile`` report through ``observe_simulator``."""
    inst = Instrumentation()
    result = Measurement(FlowSpec.mptcp(carrier="att"), 256 * KB,
                         seed=3).run(instrumentation=inst)
    assert result.completed
    assert inst.counters["batches_posted"] > 0
    assert inst.counters["batch_entries"] >= inst.counters["batches_posted"]
    assert "batch_inline" in inst.counters
    assert inst.counters["arena_peak"] > 0
    report = inst.report()
    assert report["mean_burst"] > 1.0, \
        "bulk transfers must coalesce multi-packet bursts"


def test_merge_report_takes_max_of_high_water_marks():
    inst = Instrumentation()
    inst.counters["arena_peak"] = 10
    inst.counters["peak_heap"] = 5
    inst.merge_report({"phases_s": {}, "counters": {
        "arena_peak": 7, "peak_heap": 9, "batches_posted": 3}})
    assert inst.counters["arena_peak"] == 10
    assert inst.counters["peak_heap"] == 9
    assert inst.counters["batches_posted"] == 3


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------

def _busywork():
    return sum(index * index for index in range(10_000))


def test_profile_to_writes_loadable_pstats(tmp_path):
    dump = tmp_path / "run.pstats"
    with profile_to(dump):
        _busywork()
    stats = pstats.Stats(str(dump))
    functions = {name for _, _, name in stats.stats}
    assert "_busywork" in functions


def test_render_profile_lists_top_functions(tmp_path):
    dump = tmp_path / "run.pstats"
    with profile_to(dump):
        _busywork()
    text = render_profile(dump, top=5)
    assert "cumulative" in text
    assert "_busywork" in text

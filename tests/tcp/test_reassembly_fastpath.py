"""Equivalence tests for the reassembly in-order fast path.

``ReassemblyQueue.offer`` short-circuits the common case (segment lands
exactly at ``rcv_nxt`` with nothing buffered).  These tests drive a
fast-path queue and a slow-path reference through identical random
offer sequences and require identical deliveries and bookkeeping.

The reference is the same class with the fast path disarmed: a
sentinel range parked far above the sequence space keeps ``_starts``
non-empty, so every offer takes the general insert-then-advance route.
"""

import random

import pytest

from repro.tcp.reassembly import (
    ArrayReassemblyQueue,
    ReassemblyQueue,
    make_reassembly_queue,
)

SENTINEL = 10 ** 12


def make_slow_queue():
    queue = ReassemblyQueue()
    queue.offer(SENTINEL, SENTINEL + 1)
    return queue


def drive(queue, offers, sentinel=0):
    delivered = []
    accepted = []
    for start, end, meta in offers:
        accepted.append(queue.offer(
            start, end, meta,
            on_in_order=lambda s, e, m: delivered.append((s, e, m))))
    return {
        "delivered": delivered,
        "accepted": accepted,
        "rcv_nxt": queue.rcv_nxt,
        "duplicate_bytes": queue.duplicate_bytes,
        "buffered": queue.buffered_bytes - sentinel,
        "ranges": [r for r in queue.pending_ranges if r[0] < SENTINEL],
    }


def assert_equivalent(offers):
    fast = drive(ReassemblyQueue(), offers)
    slow = drive(make_slow_queue(), offers, sentinel=1)
    assert fast == slow


def test_in_order_stream_hits_fast_path():
    offers = [(i * 1448, (i + 1) * 1448, i) for i in range(50)]
    fast = drive(ReassemblyQueue(), offers)
    assert fast["rcv_nxt"] == 50 * 1448
    assert fast["buffered"] == 0
    assert fast["duplicate_bytes"] == 0
    assert fast["delivered"] == [(s, e, m) for s, e, m in offers]
    assert_equivalent(offers)


def test_fast_path_disabled_while_holes_outstanding():
    # A hole forces buffering; later in-order fills must still drain
    # the buffered ranges through the general path.
    offers = [(0, 100, "a"), (200, 300, "c"), (100, 200, "b"),
              (300, 400, "d")]
    fast = drive(ReassemblyQueue(), offers)
    assert fast["delivered"] == [(0, 100, "a"), (100, 200, "b"),
                                 (200, 300, "c"), (300, 400, "d")]
    assert fast["rcv_nxt"] == 400
    assert_equivalent(offers)


def test_duplicate_and_overlap_accounting_matches():
    offers = [(0, 100, 1), (0, 100, 2), (50, 150, 3), (100, 300, 4),
              (250, 350, 5)]
    assert_equivalent(offers)


@pytest.mark.parametrize("seed", [1, 7, 42, 2013])
def test_randomized_offer_sequences_are_equivalent(seed):
    """Random mixes of in-order delivery, reordering, duplication and
    partial overlap: the fast path must be unobservable."""
    rng = random.Random(seed)
    mss = 1000
    offers = []
    cursor = 0
    for index in range(300):
        roll = rng.random()
        if roll < 0.55:
            start = cursor
            cursor += mss
        elif roll < 0.75:  # reorder ahead, leaving a hole
            start = cursor + rng.randrange(1, 5) * mss
        elif roll < 0.9:  # retransmit something old
            start = max(0, cursor - rng.randrange(1, 6) * mss)
        else:  # misaligned overlap
            start = max(0, cursor - rng.randrange(1, 3) * mss
                        + rng.randrange(-500, 500))
        length = mss if rng.random() < 0.8 else rng.randrange(1, 2 * mss)
        offers.append((start, start + length, index))
    assert_equivalent(offers)


def test_buffered_bytes_counter_matches_stored_ranges():
    rng = random.Random(99)
    queue = ReassemblyQueue()
    for _ in range(200):
        start = rng.randrange(0, 50_000)
        queue.offer(start, start + rng.randrange(1, 3000))
        stored = sum(end - start
                     for start, end in queue.pending_ranges)
        assert queue.buffered_bytes == stored


# ----------------------------------------------------------------------
# ArrayReassemblyQueue (vectorized core) vs the scalar reference
# ----------------------------------------------------------------------

def _random_offers(seed, count=300):
    rng = random.Random(seed)
    mss = 1000
    offers = []
    cursor = 0
    for index in range(count):
        roll = rng.random()
        if roll < 0.55:
            start = cursor
            cursor += mss
        elif roll < 0.75:
            start = cursor + rng.randrange(1, 5) * mss
        elif roll < 0.9:
            start = max(0, cursor - rng.randrange(1, 6) * mss)
        else:
            start = max(0, cursor - rng.randrange(1, 3) * mss
                        + rng.randrange(-500, 500))
        length = mss if rng.random() < 0.8 else rng.randrange(1, 2 * mss)
        offers.append((start, start + length, index))
    return offers


@pytest.mark.parametrize("seed", [1, 7, 42, 2013, 777])
def test_array_queue_matches_scalar_on_random_streams(seed):
    offers = _random_offers(seed)
    assert drive(ArrayReassemblyQueue(), offers) == \
        drive(ReassemblyQueue(), offers)


def test_array_queue_matches_scalar_on_corner_cases():
    cases = [
        # pure in-order burst (one vectorized chain pop)
        [(i * 100, (i + 1) * 100, i) for i in range(30)],
        # hole filled by the exact missing piece, long buffered run
        [(100 * i, 100 * (i + 1), i) for i in range(1, 20)]
        + [(0, 100, "plug")],
        # duplicates and partial overlaps around the head
        [(0, 100, 1), (0, 100, 2), (50, 150, 3), (100, 300, 4),
         (250, 350, 5), (0, 400, 6)],
        # single-byte segments (FIN-style) and adjacency
        [(0, 1, "f0"), (2, 3, "hole"), (1, 2, "plug"), (3, 4, "f1")],
    ]
    for offers in cases:
        assert drive(ArrayReassemblyQueue(), offers) == \
            drive(ReassemblyQueue(), offers)


def test_array_queue_survives_reentrant_offer():
    """A delivery callback re-enters ``offer`` (the receive buffer does
    this when an in-order delivery unblocks the application); the array
    queue must fall back to live-state stepping without duplicating or
    dropping deliveries."""

    def run(queue):
        delivered = []

        def on_in_order(start, end, meta):
            delivered.append((start, end, meta))
            if meta == "trigger":
                queue.offer(300, 400, "nested",
                            on_in_order=on_in_order)

        queue.offer(100, 200, "buffered", on_in_order=on_in_order)
        queue.offer(200, 300, "trigger", on_in_order=on_in_order)
        queue.offer(0, 100, "head", on_in_order=on_in_order)
        return delivered, queue.rcv_nxt, queue.buffered_bytes

    assert run(ArrayReassemblyQueue()) == run(ReassemblyQueue())


def test_array_queue_drain_resets_storage():
    queue = ArrayReassemblyQueue()
    for index in range(1, 50):
        queue.offer(index * 100, (index + 1) * 100, index)
    queue.offer(0, 100, 0)
    assert queue.buffered_bytes == 0
    assert queue.pending_ranges == []
    assert queue._head == 0 and queue._tail == 0


def test_sack_blocks_and_ranges_return_python_ints():
    queue = ArrayReassemblyQueue()
    queue.offer(100, 200)
    queue.offer(300, 400)
    for start, end in list(queue.sack_blocks()) + list(queue.pending_ranges):
        assert type(start) is int and type(end) is int


def test_factory_honours_scalar_mode(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR", raising=False)
    assert isinstance(make_reassembly_queue(), ArrayReassemblyQueue)
    monkeypatch.setenv("REPRO_SCALAR", "1")
    queue = make_reassembly_queue(rcv_nxt=5)
    assert type(queue) is ReassemblyQueue
    assert queue.rcv_nxt == 5

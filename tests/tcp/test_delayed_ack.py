"""Tests for the delayed-acknowledgement option."""


from repro.tcp.endpoint import TcpConfig

from tests.conftest import build_mininet, start_transfer

DELACK = TcpConfig(delayed_ack=True)


def test_delayed_acks_halve_ack_count():
    def acks_for(config):
        net = build_mininet()
        harness = start_transfer(net, size=200_000, config=TcpConfig(),
                                 client_config=config)
        net.run(until=30.0)
        assert sum(harness.received) == 200_000
        return harness.client_ep.stats.acks_sent

    per_packet = acks_for(TcpConfig())
    delayed = acks_for(DELACK)
    assert delayed < per_packet * 0.7
    assert delayed > per_packet * 0.3  # roughly every other segment


def test_transfer_correct_with_delayed_acks():
    net = build_mininet(loss_rate=0.02, seed=8)
    harness = start_transfer(net, size=300_000, config=TcpConfig(),
                             client_config=DELACK)
    net.run(until=60.0)
    assert sum(harness.received) == 300_000


def test_single_segment_acked_after_timer():
    net = build_mininet()
    harness = start_transfer(net, size=1000, config=TcpConfig(),
                             client_config=DELACK)
    net.run(until=10.0)
    # The lone data segment must still be acknowledged (timer path),
    # so the server's retransmission count stays zero.
    assert sum(harness.received) == 1000
    assert harness.server().stats.retransmitted_packets == 0


def test_out_of_order_arrival_acks_immediately():
    """Dupacks must not be delayed or fast retransmit would die."""
    net = build_mininet()
    downlink = net.client.interfaces["client.wifi"].down_link
    original = downlink.send
    state = {"count": 0}

    def drop_one(packet):
        if packet.segment.payload_len > 0:
            state["count"] += 1
            if state["count"] == 15:
                return
        original(packet)

    downlink.send = drop_one
    harness = start_transfer(net, size=150_000, config=TcpConfig(),
                             client_config=DELACK)
    net.run(until=30.0)
    assert sum(harness.received) == 150_000
    server = harness.server()
    assert server.stats.fast_retransmits >= 1
    assert server.stats.timeouts == 0


def test_delayed_ack_slows_slow_start_slightly():
    """Fewer ACKs -> slower byte-counted window growth."""

    def time_for(config):
        net = build_mininet(rate_bps=100e6, buffer_bytes=10 ** 7)
        harness = start_transfer(net, size=500_000, config=TcpConfig(),
                                 client_config=config)
        net.run(until=30.0)
        assert sum(harness.received) == 500_000
        return harness.client_ep.stats.established_at, net.sim.now

    _, fast = time_for(TcpConfig())
    _, slow = time_for(DELACK)
    assert slow >= fast * 0.95  # never faster; typically a bit slower

"""Focused unit tests on endpoint internals: SACK scoreboard, flight
accounting, delegate-mode behaviour, teardown edges."""

import pytest

from repro.core.options import DssMapping, MptcpOptions
from repro.tcp.endpoint import TcpConfig, TcpEndpoint
from repro.tcp.segment import Flags, Segment

from tests.conftest import build_mininet, start_transfer


def established_pair(net=None, size=1_000_000):
    net = net or build_mininet()
    harness = start_transfer(net, size=size)
    net.run(until=0.2)
    assert harness.server().state == "established"
    return net, harness


def test_flight_size_bounded_by_cwnd():
    net, harness = established_pair()
    server = harness.server()
    assert server._flight_size() <= server.cwnd
    assert server._flight_size() >= server.mss


def test_pipe_matches_unacked_unsacked_bytes():
    net, harness = established_pair()
    server = harness.server()
    manual = sum(s.seq_space for s in server._sent.values()
                 if s.state == 0)  # _FLIGHT
    assert server.flight_bytes == manual


def test_sack_marks_reduce_pipe():
    net, harness = established_pair()
    server = harness.server()
    sent = list(server._sent.values())
    assert len(sent) >= 3
    victim = sent[1]
    before = server.flight_bytes
    server._process_sack(((victim.seq, victim.end_seq),))
    assert server.flight_bytes == before - victim.seq_space
    # Re-SACKing the same range changes nothing.
    server._process_sack(((victim.seq, victim.end_seq),))
    assert server.flight_bytes == before - victim.seq_space


def test_mark_sack_losses_requires_dupthresh_of_sacked_data():
    net, harness = established_pair()
    server = harness.server()
    sent = list(server._sent.values())
    assert len(sent) >= 6
    server._in_recovery = True
    server._recovery_epoch += 1
    # SACK only the segment right after the first: 1 MSS above the
    # hole -- below DupThresh * MSS, so nothing may be marked lost.
    server._process_sack(((sent[1].seq, sent[1].end_seq),))
    assert sent[0].state == 0  # still _FLIGHT
    # SACK three more segments: now the hole is marked lost.
    server._process_sack(((sent[1].seq, sent[4].end_seq),))
    assert sent[0].state == 2  # _LOST


def test_advertised_window_reflects_buffered_out_of_order():
    net, harness = established_pair()
    client = harness.client_ep
    free_before = client._advertised_window()
    # Inject an out-of-order segment well past rcv_nxt.
    future = client.reassembly.rcv_nxt + 100_000
    segment = Segment(src_port=80, dst_port=client.local_port,
                      seq=future, payload_len=1000,
                      flags=Flags(ack=True), ack=client.snd_nxt)
    from repro.netsim.packet import Packet
    client.handle_packet(Packet("server.eth0", "client.wifi", segment))
    assert client._advertised_window() == free_before - 1000


def test_duplicate_syn_triggers_synack_retransmission():
    net = build_mininet()
    harness = start_transfer(net, size=0)
    net.run(until=0.2)
    server = harness.server()
    syn = Segment(src_port=harness.client_ep.local_port, dst_port=80,
                  seq=0, flags=Flags(syn=True))
    from repro.netsim.packet import Packet
    server.state = "syn_rcvd"  # simulate a lost handshake ACK
    server.handle_packet(Packet("client.wifi", "server.eth0", syn))
    # A fresh SYN+ACK went out (transmitted via the host, not counted
    # in acks_sent); the endpoint must not crash or double-establish.
    assert server.state == "syn_rcvd"


def test_rst_tears_down():
    net, harness = established_pair()
    client = harness.client_ep
    rst = Segment(src_port=80, dst_port=client.local_port,
                  flags=Flags(rst=True))
    from repro.netsim.packet import Packet
    client.handle_packet(Packet("server.eth0", "client.wifi", rst))
    assert client.state == "closed"


def test_packets_ignored_after_failure():
    net, harness = established_pair()
    client = harness.client_ep
    client.fail()
    assert client.state == "failed"
    data = Segment(src_port=80, dst_port=client.local_port,
                   seq=client.reassembly.rcv_nxt, payload_len=100,
                   flags=Flags(ack=True), ack=client.snd_nxt)
    from repro.netsim.packet import Packet
    before = client.stats.acks_sent
    client.handle_packet(Packet("server.eth0", "client.wifi", data))
    assert client.stats.acks_sent == before  # no reaction


def test_fail_is_idempotent_and_detaches():
    net, harness = established_pair()
    client = harness.client_ep
    failures = []
    client.on_failed = lambda: failures.append(1)
    client.fail()
    client.fail()
    assert failures == [1]
    assert client not in client.controller.flows


def test_deregister_releases_four_tuple():
    net, harness = established_pair()
    client = harness.client_ep
    key = client.four_tuple
    client.deregister()
    # The tuple can be bound again.
    net.client.register_endpoint(key, object())


class StubDelegate:
    """A minimal delegate: serves a fixed DSN stream."""

    def __init__(self, total):
        self.total = total
        self.next_dsn = 0
        self.received = []
        self.segments = []

    def syn_options(self, ep):
        return MptcpOptions(mp_capable=True, token=1)

    def synack_options(self, ep):
        return MptcpOptions(mp_capable=True, token=1)

    def on_handshake_options(self, ep, options):
        pass

    def on_established(self, ep):
        pass

    def pull_data(self, ep, max_bytes):
        if self.next_dsn >= self.total:
            return None
        length = min(max_bytes, self.total - self.next_dsn)
        dsn = self.next_dsn
        self.next_dsn += length
        return dsn, length

    def data_options(self, ep, ssn, dsn, length):
        return MptcpOptions(dss=DssMapping(dsn=dsn, ssn=ssn,
                                           length=length))

    def ack_options(self, ep):
        return MptcpOptions(data_ack=0)

    def receive_window(self, ep):
        return 8 * 1024 * 1024

    def on_data(self, ep, start, end, meta):
        self.received.append((start, end))

    def on_segment(self, ep, segment):
        self.segments.append(segment)

    def on_peer_fin(self, ep):
        pass

    def on_rto(self, ep):
        pass

    def on_failed(self, ep):
        pass

    def has_pending_data(self, ep):
        return self.next_dsn < self.total


def test_delegate_mode_pulls_and_maps():
    from repro.core.coupling import RenoController
    from repro.tcp.endpoint import TcpListener

    net = build_mininet()
    config = TcpConfig()
    server_delegate = StubDelegate(total=50_000)
    client_delegate = StubDelegate(total=0)

    def accept(packet, host):
        segment = packet.segment
        endpoint = TcpEndpoint(net.sim, host, packet.dst,
                               segment.dst_port, packet.src,
                               segment.src_port, config,
                               RenoController(),
                               delegate=server_delegate)
        endpoint.accept(packet)

    net.server.bind_listener(80, TcpListener(accept))
    client = TcpEndpoint(net.sim, net.client, "client.wifi",
                         net.client.ephemeral_port(), "server.eth0",
                         80, config, RenoController(),
                         delegate=client_delegate)
    client.connect()
    net.run(until=10.0)
    # All 50 KB pulled, transmitted with mappings, and delivered in
    # SSN order with the mapping metadata intact.
    assert server_delegate.next_dsn == 50_000
    total = sum(end - start for start, end in client_delegate.received)
    assert total == 50_000
    starts = [start for start, _ in client_delegate.received]
    assert starts == sorted(starts)


def test_delegate_send_rejected():
    net = build_mininet()
    from repro.core.coupling import RenoController

    endpoint = TcpEndpoint(net.sim, net.client, "client.wifi",
                           net.client.ephemeral_port(), "server.eth0",
                           80, TcpConfig(), RenoController(),
                           delegate=StubDelegate(0))
    with pytest.raises(RuntimeError):
        endpoint.send(100)

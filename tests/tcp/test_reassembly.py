"""Tests for the reassembly queue, including property-based checks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.reassembly import ReassemblyQueue


def collect(queue):
    delivered = []
    return delivered, lambda s, e, m: delivered.append((s, e, m))


def test_in_order_delivery_is_immediate():
    queue = ReassemblyQueue(rcv_nxt=0)
    delivered, sink = collect(queue)
    assert queue.offer(0, 100, "a", sink) == 100
    assert delivered == [(0, 100, "a")]
    assert queue.rcv_nxt == 100
    assert queue.buffered_bytes == 0


def test_out_of_order_is_held_then_released():
    queue = ReassemblyQueue(rcv_nxt=0)
    delivered, sink = collect(queue)
    queue.offer(100, 200, "b", sink)
    assert delivered == []
    assert queue.buffered_bytes == 100
    queue.offer(0, 100, "a", sink)
    assert delivered == [(0, 100, "a"), (100, 200, "b")]
    assert queue.rcv_nxt == 200


def test_duplicate_below_cumulative_point_ignored():
    queue = ReassemblyQueue(rcv_nxt=100)
    delivered, sink = collect(queue)
    assert queue.offer(0, 50, None, sink) == 0
    assert queue.duplicate_bytes == 50
    assert delivered == []


def test_partial_overlap_with_cumulative_point_trimmed():
    queue = ReassemblyQueue(rcv_nxt=50)
    delivered, sink = collect(queue)
    assert queue.offer(0, 100, "x", sink) == 50
    assert delivered == [(50, 100, "x")]


def test_duplicate_of_buffered_range_ignored():
    queue = ReassemblyQueue(rcv_nxt=0)
    delivered, sink = collect(queue)
    queue.offer(100, 200, None, sink)
    assert queue.offer(100, 200, None, sink) == 0
    assert queue.duplicate_bytes == 100
    assert queue.buffered_bytes == 100


def test_overlap_with_buffered_range_splits():
    queue = ReassemblyQueue(rcv_nxt=0)
    delivered, sink = collect(queue)
    queue.offer(100, 200, None, sink)
    assert queue.offer(50, 250, None, sink) == 100  # 50-100 and 200-250
    assert queue.buffered_bytes == 200
    assert queue.pending_ranges == [(50, 100), (100, 200), (200, 250)]


def test_empty_range_rejected():
    queue = ReassemblyQueue()
    assert queue.offer(10, 10) == 0
    assert queue.offer(10, 5) == 0


def test_sack_blocks_merge_adjacent_ranges():
    queue = ReassemblyQueue(rcv_nxt=0)
    queue.offer(100, 200)
    queue.offer(200, 300)
    queue.offer(500, 600)
    blocks = queue.sack_blocks()
    assert blocks == ((500, 600), (100, 300))


def test_sack_blocks_limit():
    queue = ReassemblyQueue(rcv_nxt=0)
    for start in (100, 300, 500, 700, 900):
        queue.offer(start, start + 50)
    assert len(queue.sack_blocks(limit=3)) == 3
    # Highest ranges are reported first (most recently useful).
    assert queue.sack_blocks(limit=1) == ((900, 950),)


def test_hole_filling_delivers_everything_in_order():
    queue = ReassemblyQueue(rcv_nxt=0)
    delivered, sink = collect(queue)
    for start in (300, 100, 200):
        queue.offer(start, start + 100, start, sink)
    assert delivered == []
    queue.offer(0, 100, 0, sink)
    assert [d[0] for d in delivered] == [0, 100, 200, 300]
    assert queue.rcv_nxt == 400


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 8)),
                min_size=1, max_size=40))
def test_property_matches_byte_set_model(chunks):
    """The queue must deliver exactly the contiguous prefix of bytes
    received, each byte exactly once, in order."""
    queue = ReassemblyQueue(rcv_nxt=0)
    delivered = []
    queue_bytes = set()
    for start, length in chunks:
        end = start + length
        queue.offer(start, end,
                    on_in_order=lambda s, e, m: delivered.append((s, e)))
        queue_bytes |= set(range(start, end))
        # Model: cumulative point advances over the received byte set.
        expected_rcv_nxt = 0
        while expected_rcv_nxt in queue_bytes:
            expected_rcv_nxt += 1
        assert queue.rcv_nxt == expected_rcv_nxt
        # Buffered bytes = received bytes above the cumulative point.
        assert queue.buffered_bytes == sum(
            1 for byte in queue_bytes if byte >= expected_rcv_nxt)
    # Delivered ranges are disjoint, ordered, and cover [0, rcv_nxt).
    covered = []
    for start, end in delivered:
        assert start < end
        if covered:
            assert start >= covered[-1][1]
        covered.append((start, end))
    total = sum(end - start for start, end in covered)
    assert total == queue.rcv_nxt


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 10)),
                min_size=1, max_size=30))
def test_property_sack_blocks_describe_buffered_ranges(chunks):
    queue = ReassemblyQueue(rcv_nxt=0)
    received = set()
    for start, length in chunks:
        queue.offer(start, start + length)
        received |= set(range(start, start + length))
    blocks = queue.sack_blocks(limit=10 ** 6)
    block_bytes = set()
    for start, end in blocks:
        assert start < end
        assert start >= queue.rcv_nxt
        block_bytes |= set(range(start, end))
    expected = {byte for byte in received if byte >= queue.rcv_nxt}
    assert block_bytes == expected

"""Tests for the classic New Reno path (SACK disabled).

The simulator defaults to SACK (the paper enables it), but the
recovery machinery must also work without it -- dupack-counted fast
retransmit, window inflation, partial-ACK retransmission.
"""


from repro.tcp.endpoint import TcpConfig

from tests.conftest import build_mininet, start_transfer

NOSACK = TcpConfig(use_sack=False)


def test_lossless_transfer_without_sack():
    net = build_mininet()
    harness = start_transfer(net, size=200_000, config=NOSACK)
    net.run(until=30.0)
    assert sum(harness.received) == 200_000
    assert harness.server().stats.retransmitted_packets == 0


def test_recovery_from_single_loss_without_sack():
    net = build_mininet()
    downlink = net.client.interfaces["client.wifi"].down_link
    original = downlink.send
    state = {"count": 0}

    def drop_one(packet):
        if packet.segment.payload_len > 0:
            state["count"] += 1
            if state["count"] == 20:
                return
        original(packet)

    downlink.send = drop_one
    harness = start_transfer(net, size=150_000, config=NOSACK)
    net.run(until=30.0)
    assert sum(harness.received) == 150_000
    server = harness.server()
    assert server.stats.fast_retransmits == 1
    assert server.stats.timeouts == 0  # dupacks, not a timeout


def test_recovery_from_burst_loss_without_sack():
    """Multiple losses in one window: New Reno's partial-ACK path."""
    net = build_mininet()
    downlink = net.client.interfaces["client.wifi"].down_link
    original = downlink.send
    state = {"count": 0}

    def drop_burst(packet):
        if packet.segment.payload_len > 0:
            state["count"] += 1
            if state["count"] in (20, 22, 24):
                return
        original(packet)

    downlink.send = drop_burst
    harness = start_transfer(net, size=200_000, config=NOSACK)
    net.run(until=60.0)
    assert sum(harness.received) == 200_000
    # One recovery episode handles all three holes via partial ACKs.
    assert harness.server().stats.retransmitted_packets >= 3


def test_random_loss_without_sack_still_completes():
    net = build_mininet(loss_rate=0.03, seed=5)
    harness = start_transfer(net, size=300_000, config=NOSACK)
    net.run(until=120.0)
    assert sum(harness.received) == 300_000


def test_sack_recovers_faster_than_newreno_on_bursts():
    """SACK retransmits all holes per RTT; New Reno one per RTT."""

    def run(config):
        net = build_mininet(loss_rate=0.04, seed=9)
        harness = start_transfer(net, size=400_000, config=config)
        net.run(until=120.0)
        assert sum(harness.received) == 400_000
        return net.sim.now

    with_sack = run(TcpConfig(use_sack=True))
    without = run(TcpConfig(use_sack=False))
    assert with_sack <= without * 1.2

"""Tests for the RFC 6298 RTO estimator."""

import pytest

from repro.tcp.rto import RtoEstimator


def test_initial_rto_before_samples():
    estimator = RtoEstimator(initial_rto=1.0)
    assert estimator.rto == 1.0
    assert estimator.srtt is None


def test_first_sample_initializes_per_rfc():
    estimator = RtoEstimator(min_rto=0.0)
    estimator.sample(0.1)
    assert estimator.srtt == pytest.approx(0.1)
    assert estimator.rttvar == pytest.approx(0.05)
    assert estimator.rto == pytest.approx(0.1 + 4 * 0.05)


def test_subsequent_samples_smooth():
    estimator = RtoEstimator(min_rto=0.0)
    estimator.sample(0.1)
    estimator.sample(0.2)
    # rttvar = 3/4*0.05 + 1/4*|0.1-0.2| = 0.0625
    assert estimator.rttvar == pytest.approx(0.0625)
    # srtt = 7/8*0.1 + 1/8*0.2 = 0.1125
    assert estimator.srtt == pytest.approx(0.1125)
    assert estimator.rto == pytest.approx(0.1125 + 4 * 0.0625)


def test_min_rto_clamp():
    estimator = RtoEstimator(min_rto=0.2)
    estimator.sample(0.001)  # a sub-millisecond LAN RTT
    assert estimator.rto == 0.2


def test_max_rto_clamp():
    estimator = RtoEstimator(max_rto=60.0)
    estimator.sample(100.0)
    assert estimator.rto == 60.0


def test_backoff_doubles_and_caps():
    estimator = RtoEstimator(min_rto=0.0, max_rto=60.0)
    estimator.sample(1.0)
    base = estimator.rto
    estimator.backoff()
    assert estimator.rto == pytest.approx(2 * base)
    for _ in range(20):
        estimator.backoff()
    assert estimator.rto == 60.0


def test_sample_resets_backoff():
    estimator = RtoEstimator(min_rto=0.0)
    estimator.sample(1.0)
    estimator.backoff()
    estimator.backoff()
    estimator.sample(1.0)
    # rttvar = 3/4 * 0.5 + 1/4 * 0 = 0.375; rto = 1.0 + 4 * 0.375.
    assert estimator.rto == pytest.approx(2.5)


def test_negative_sample_rejected():
    estimator = RtoEstimator()
    with pytest.raises(ValueError):
        estimator.sample(-0.1)


def test_smoothed_rtt_default():
    estimator = RtoEstimator()
    assert estimator.smoothed_rtt(default=0.3) == 0.3
    estimator.sample(0.05)
    assert estimator.smoothed_rtt() == pytest.approx(0.05)


def test_sample_counter():
    estimator = RtoEstimator()
    for _ in range(5):
        estimator.sample(0.1)
    assert estimator.samples == 5

"""End-to-end tests of the TCP endpoint over a clean mini network."""

import pytest

from repro.tcp.endpoint import TcpConfig

from tests.conftest import build_mininet, start_transfer


def test_three_way_handshake_establishes_both_ends():
    net = build_mininet()
    harness = start_transfer(net, size=0)
    net.run(until=1.0)
    assert harness.client_ep.state == "established"
    assert harness.server().state == "established"


def test_handshake_takes_one_rtt():
    net = build_mininet(prop_delay=0.05)  # RTT 0.2s client<->server
    harness = start_transfer(net, size=0)
    net.run(until=1.0)
    established = harness.client_ep.stats.established_at
    # 2 one-way trips x (client access + server access) = ~0.2s + service.
    assert established == pytest.approx(0.2, abs=0.01)


def test_handshake_seeds_rtt_estimator():
    net = build_mininet()
    harness = start_transfer(net, size=0)
    net.run(until=1.0)
    assert harness.client_ep.rto_estimator.samples >= 1
    assert 0.0 < harness.client_ep.smoothed_rtt() < 0.1


def test_lossless_transfer_delivers_exact_byte_count():
    net = build_mininet()
    harness = start_transfer(net, size=100_000)
    net.run(until=10.0)
    assert sum(harness.received) == 100_000


def test_transfer_is_deterministic():
    def run_once():
        net = build_mininet(seed=42, loss_rate=0.02)
        harness = start_transfer(net, size=200_000)
        net.run(until=30.0)
        return (sum(harness.received),
                harness.server().stats.retransmitted_packets, net.sim.now)

    assert run_once() == run_once()


def test_transfer_survives_random_loss():
    net = build_mininet(loss_rate=0.05, seed=11)
    harness = start_transfer(net, size=300_000)
    net.run(until=60.0)
    assert sum(harness.received) == 300_000
    server = harness.server()
    assert server.stats.retransmitted_packets > 0
    assert server.stats.loss_rate > 0.01


def test_no_spurious_retransmissions_on_clean_path():
    net = build_mininet()
    harness = start_transfer(net, size=500_000)
    net.run(until=30.0)
    server = harness.server()
    assert server.stats.retransmitted_packets == 0
    assert server.stats.timeouts == 0


def test_fin_reaches_client_after_all_data():
    net = build_mininet()
    closed = []
    harness = start_transfer(net, size=50_000)
    harness.client_ep.on_close = lambda: closed.append(True)
    net.run(until=10.0)
    assert closed == [True]
    assert sum(harness.received) == 50_000


def test_initial_window_is_ten_segments():
    config = TcpConfig()
    net = build_mininet()
    harness = start_transfer(net, size=1_000_000, config=config)
    net.run(until=0.001)  # nothing established yet
    assert harness.client_ep.cwnd == 10 * config.mss


def test_slow_start_doubles_window_per_round():
    net = build_mininet()
    harness = start_transfer(net, size=2_000_000)
    net.run(until=0.3)
    server = harness.server()
    # Past a few RTTs the window must exceed the initial 10 segments,
    # but stay at or near ssthresh (64 KB) once reached.
    assert server.cwnd > 10 * server.mss


def test_ssthresh_initialized_from_config():
    config = TcpConfig(initial_ssthresh=32 * 1024)
    net = build_mininet()
    harness = start_transfer(net, size=0, config=config)
    net.run(until=1.0)
    assert harness.server().ssthresh == 32 * 1024


def test_congestion_avoidance_beyond_ssthresh_is_gradual():
    net = build_mininet(rate_bps=100e6, buffer_bytes=10 ** 7)
    harness = start_transfer(net, size=20_000_000)
    net.run(until=2.0)
    server = harness.server()
    mss = server.mss
    # cwnd passed ssthresh (64 KB) but cannot have doubled many times
    # since: CA adds ~1 MSS per RTT (RTT ~0.04s -> ~50 rounds max).
    assert server.cwnd > 64 * 1024
    assert server.cwnd < 64 * 1024 + 60 * mss


def test_syn_retransmission_on_lost_syn():
    net = build_mininet()
    # Lose the very first client->server packet: monkey-patch the
    # client uplink to drop packet one.
    uplink = net.client.interfaces["client.wifi"].up_link
    original = uplink.send
    dropped = []

    def drop_first(packet):
        if not dropped:
            dropped.append(packet)
            return
        original(packet)

    uplink.send = drop_first
    harness = start_transfer(net, size=1000)
    net.run(until=5.0)
    assert harness.client_ep.state in ("established", "close_wait")
    assert sum(harness.received) == 1000
    # The handshake needed a retransmitted SYN after ~1s.
    assert harness.client_ep.stats.established_at > 1.0


def test_receiver_window_limits_sender():
    config = TcpConfig(rcv_buffer=8 * 1024 * 1024)
    tiny_rcv = TcpConfig(rcv_buffer=20_000)
    net = build_mininet()
    # Server uses the big config; client advertises a tiny buffer.
    harness = start_transfer(net, size=1_000_000, config=config,
                             client_config=tiny_rcv)
    net.run(until=0.5)
    server = harness.server()
    # In-flight data never exceeds the client's advertised window.
    assert server.snd_nxt - server.snd_una <= 20_000 + server.mss


def test_zero_byte_send_is_noop():
    net = build_mininet()
    harness = start_transfer(net, size=0)
    net.run(until=1.0)
    harness.server().send(0)
    net.run(until=2.0)
    assert sum(harness.received) == 0


def test_negative_send_rejected():
    net = build_mininet()
    harness = start_transfer(net, size=0)
    net.run(until=1.0)
    with pytest.raises(ValueError):
        harness.server().send(-1)


def test_connect_twice_rejected():
    net = build_mininet()
    harness = start_transfer(net, size=0)
    with pytest.raises(RuntimeError):
        harness.client_ep.connect()


def test_loss_rate_statistic_matches_definition():
    net = build_mininet(loss_rate=0.03, seed=21)
    harness = start_transfer(net, size=400_000)
    net.run(until=60.0)
    server = harness.server()
    stats = server.stats
    assert stats.loss_rate == pytest.approx(
        stats.retransmitted_packets / stats.data_packets_sent)


def test_rto_recovers_from_tail_loss():
    """Drop the last packets of the transfer (no dupacks possible)."""
    net = build_mininet()
    downlink = net.client.interfaces["client.wifi"].down_link
    original = downlink.send
    state = {"count": 0}

    def drop_late(packet):
        if packet.segment.payload_len > 0:
            state["count"] += 1
            # Drop every data packet from #42 on, first time around:
            # the tail of a ~46-packet transfer, so no dupacks follow.
            if state["count"] >= 42 and state["count"] <= 46:
                return
        original(packet)

    downlink.send = drop_late
    harness = start_transfer(net, size=64_000)
    net.run(until=30.0)
    assert sum(harness.received) == 64_000
    assert harness.server().stats.timeouts >= 1

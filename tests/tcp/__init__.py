"""Test package."""

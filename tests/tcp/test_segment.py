"""Tests for segment value objects."""

from repro.tcp.segment import Flags, Segment


def test_payload_consumes_sequence_space():
    segment = Segment(src_port=1, dst_port=2, seq=100, payload_len=500)
    assert segment.seq_space == 500
    assert segment.end_seq == 600


def test_syn_and_fin_consume_one_each():
    syn = Segment(src_port=1, dst_port=2, seq=0, flags=Flags(syn=True))
    assert syn.seq_space == 1
    assert syn.end_seq == 1
    fin = Segment(src_port=1, dst_port=2, seq=10, flags=Flags(fin=True))
    assert fin.seq_space == 1
    data_fin = Segment(src_port=1, dst_port=2, seq=10, payload_len=100,
                       flags=Flags(fin=True, ack=True))
    assert data_fin.seq_space == 101


def test_pure_ack_detection():
    pure = Segment(src_port=1, dst_port=2, flags=Flags(ack=True))
    assert pure.is_pure_ack
    with_data = Segment(src_port=1, dst_port=2, flags=Flags(ack=True),
                        payload_len=1)
    assert not with_data.is_pure_ack
    synack = Segment(src_port=1, dst_port=2,
                     flags=Flags(syn=True, ack=True))
    assert not synack.is_pure_ack
    fin = Segment(src_port=1, dst_port=2, flags=Flags(fin=True, ack=True))
    assert not fin.is_pure_ack


def test_flags_render_readably():
    assert str(Flags(syn=True, ack=True)) == "syn|ack"
    assert str(Flags()) == "none"


def test_segments_are_immutable_values():
    segment = Segment(src_port=1, dst_port=2)
    try:
        segment.seq = 5
        raised = False
    except AttributeError:
        raised = True
    assert raised

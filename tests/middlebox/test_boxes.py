"""Unit tests for the on-path middlebox models."""

import random

import pytest

from repro.core.options import DssMapping, MptcpOptions
from repro.middlebox import (
    Cgn,
    FlowTable,
    LinkTap,
    MiddleboxChain,
    OptionStripper,
    PayloadProxy,
    SequenceRewriter,
    StatefulFirewall,
    build_chain,
    install_chain,
)
from repro.netsim.link import Link, LinkConfig
from repro.netsim.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.segment import Flags, Segment


def make_packet(src="client.wifi", dst="server.eth0", src_port=1000,
                dst_port=80, payload=0, **kwargs):
    segment = Segment(src_port=src_port, dst_port=dst_port,
                      payload_len=payload, **kwargs)
    return Packet(src, dst, segment)


# ----------------------------------------------------------------------
# OptionStripper
# ----------------------------------------------------------------------

def test_stripper_removes_mp_capable_and_token():
    box = OptionStripper()
    packet = make_packet(flags=Flags(syn=True),
                         options=MptcpOptions(mp_capable=True, token=7))
    out = box.process(packet, "up", 0.0)
    assert len(out) == 1
    # Nothing left of the option block: it vanishes entirely.
    assert out[0].segment.options is None
    assert box.options_stripped == 1


def test_stripper_is_selective():
    box = OptionStripper(strip_capable=False, strip_join=False,
                         strip_add_addr=False, strip_dss=True)
    options = MptcpOptions(mp_capable=True, token=7,
                           dss=DssMapping(dsn=0, ssn=1, length=100))
    out = box.process(make_packet(payload=100, options=options), "up", 0.0)
    stripped = out[0].segment.options
    assert stripped.mp_capable and stripped.token == 7
    assert stripped.dss is None


def test_stripper_clears_mp_fail_with_dss():
    box = OptionStripper(strip_capable=False, strip_join=False,
                         strip_add_addr=False, strip_dss=True)
    out = box.process(make_packet(options=MptcpOptions(mp_fail=True)),
                      "up", 0.0)
    assert out[0].segment.options is None


def test_stripper_probability_zero_never_strips():
    box = OptionStripper(probability=0.0, rng=random.Random(1))
    packet = make_packet(options=MptcpOptions(mp_capable=True, token=7))
    out = box.process(packet, "up", 0.0)
    assert out[0].segment.options is not None
    assert out[0].segment.options.mp_capable
    assert box.options_stripped == 0


def test_stripper_passes_plain_tcp_untouched():
    box = OptionStripper()
    packet = make_packet(payload=100)
    assert box.process(packet, "down", 0.0) == [packet]
    assert packet.segment.options is None


# ----------------------------------------------------------------------
# SequenceRewriter
# ----------------------------------------------------------------------

def test_rewriter_displaces_dss_anchor_per_flow():
    box = SequenceRewriter(rng=random.Random(9))
    options = MptcpOptions(dss=DssMapping(dsn=0, ssn=1, length=100))
    first = box.process(make_packet(payload=100, options=options),
                        "up", 0.0)[0]
    offset = first.segment.options.dss.ssn - 1
    assert offset >= 1
    # The same flow gets the same displacement on every packet...
    again = box.process(
        make_packet(payload=100, options=MptcpOptions(
            dss=DssMapping(dsn=100, ssn=101, length=100))), "up", 0.0)[0]
    assert again.segment.options.dss.ssn == 101 + offset
    # ...and both directions share the per-flow offset (the key is
    # bidirectional, like a real ISN-randomizing box).
    reverse = box.process(
        make_packet(src="server.eth0", dst="client.wifi", src_port=80,
                    dst_port=1000, payload=100,
                    options=MptcpOptions(
                        dss=DssMapping(dsn=0, ssn=1, length=100))),
        "down", 0.0)[0]
    assert reverse.segment.options.dss.ssn == 1 + offset


def test_rewriter_ignores_packets_without_dss():
    box = SequenceRewriter()
    packet = make_packet(options=MptcpOptions(mp_capable=True, token=1))
    assert box.process(packet, "up", 0.0) == [packet]
    assert box.offsets == {}


# ----------------------------------------------------------------------
# PayloadProxy
# ----------------------------------------------------------------------

def test_proxy_resegments_and_strands_options():
    box = PayloadProxy(proxy_mss=500)
    options = MptcpOptions(dss=DssMapping(dsn=0, ssn=1, length=1200))
    packet = make_packet(payload=1200, seq=1,
                         flags=Flags(ack=True, fin=True), options=options)
    chunks = box.process(packet, "down", 0.0)
    assert [chunk.segment.payload_len for chunk in chunks] == [500, 500, 200]
    assert [chunk.segment.seq for chunk in chunks] == [1, 501, 1001]
    # The mapping rides only the first chunk; the FIN only the last.
    assert chunks[0].segment.options is options
    assert all(chunk.segment.options is None for chunk in chunks[1:])
    assert [chunk.segment.flags.fin for chunk in chunks] == \
        [False, False, True]


def test_proxy_passes_small_packets_untouched():
    box = PayloadProxy(proxy_mss=536)
    packet = make_packet(payload=536)
    assert box.process(packet, "up", 0.0) == [packet]
    assert box.packets_split == 0


# ----------------------------------------------------------------------
# FlowTable / StatefulFirewall / Cgn
# ----------------------------------------------------------------------

def test_flow_table_idle_expiry():
    table = FlowTable(idle_timeout=30.0)
    table.touch("flow", now=0.0)
    assert table.active("flow", now=29.0)       # refreshed at 29
    assert table.active("flow", now=58.0)       # still inside 29+30
    assert not table.active("flow", now=100.0)  # expired
    assert table.expired == 1
    assert "flow" not in table


def test_flow_table_lru_eviction():
    table = FlowTable(max_entries=2)
    table.touch("a", now=0.0)
    table.touch("b", now=1.0)
    table.active("a", now=2.0)   # refresh makes "b" the LRU entry
    table.touch("c", now=3.0)
    assert "a" in table and "c" in table and "b" not in table
    assert table.evicted == 1


def test_flow_table_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FlowTable(idle_timeout=0)
    with pytest.raises(ValueError):
        FlowTable(max_entries=0)


def test_firewall_binding_lifecycle():
    box = StatefulFirewall(idle_timeout=30.0)
    outbound = make_packet()
    inbound = make_packet(src="server.eth0", dst="client.wifi",
                          src_port=80, dst_port=1000)
    # No binding yet: inbound dies silently.
    assert box.process(inbound, "down", 0.0) == []
    box.process(outbound, "up", 1.0)
    assert box.process(inbound, "down", 2.0) == [inbound]
    # Quiet past the timeout: the binding is gone.
    assert box.process(inbound, "down", 40.0) == []


def test_cgn_port_exhaustion_kills_quietest_flow():
    box = Cgn(idle_timeout=None, max_entries=2)
    for port, when in ((1000, 0.0), (1001, 1.0), (1002, 2.0)):
        box.process(make_packet(src_port=port), "up", when)
    victim = make_packet(src="server.eth0", dst="client.wifi",
                         src_port=80, dst_port=1000)
    survivor = make_packet(src="server.eth0", dst="client.wifi",
                           src_port=80, dst_port=1002)
    assert box.process(victim, "down", 3.0) == []
    assert box.process(survivor, "down", 3.0) == [survivor]
    assert box.table.evicted == 1


# ----------------------------------------------------------------------
# Chain, tap, link hook
# ----------------------------------------------------------------------

def test_chain_feeds_boxes_in_order_and_counts():
    proxy = PayloadProxy(proxy_mss=600)
    stripper = OptionStripper()
    chain = MiddleboxChain([proxy, stripper])
    options = MptcpOptions(dss=DssMapping(dsn=0, ssn=1, length=1200))
    out = chain.process(make_packet(payload=1200, seq=1, options=options),
                        "up", 0.0)
    # The proxy split once; the stripper then saw *both* chunks but
    # only the first still carried options to strip.
    assert len(out) == 2
    assert all(chunk.segment.options is None for chunk in out)
    assert proxy.stats.packets_seen == 1
    assert proxy.stats.packets_created == 1
    assert stripper.stats.packets_seen == 2
    assert stripper.stats.packets_mangled == 1


def test_chain_respects_box_directions():
    box = OptionStripper(directions=("down",))
    chain = MiddleboxChain([box])
    packet = make_packet(options=MptcpOptions(mp_capable=True, token=1))
    assert chain.process(packet, "up", 0.0)[0].segment.options is not None
    assert box.stats.packets_seen == 0


def test_link_tap_rejects_bad_direction():
    with pytest.raises(ValueError):
        LinkTap(MiddleboxChain(), "sideways")


class _DroppingBox(StatefulFirewall):
    pass


def _make_link(sim):
    config = LinkConfig(rate_bps=10e6, prop_delay=0.001,
                        buffer_bytes=100_000)
    return Link(sim, config, random.Random(0), name="test-link")


def test_link_middlebox_drop_is_counted():
    sim = Simulator()
    link = _make_link(sim)
    delivered = []
    link.deliver = delivered.append
    link.middlebox = LinkTap(MiddleboxChain([_DroppingBox()]), "down")
    link.send(make_packet(src="server.eth0", dst="client.wifi",
                          src_port=80, dst_port=1000))
    sim.run(until=1.0)
    assert delivered == []
    assert link.stats.drops_middlebox == 1


def test_link_forwards_every_proxy_chunk():
    sim = Simulator()
    link = _make_link(sim)
    delivered = []
    link.deliver = delivered.append
    link.middlebox = LinkTap(MiddleboxChain([PayloadProxy(proxy_mss=400)]),
                             "up")
    link.send(make_packet(payload=1000, seq=1))
    sim.run(until=1.0)
    assert [packet.segment.payload_len for packet in delivered] == \
        [400, 400, 200]
    assert link.stats.packets_delivered == 3


class _FakeNetwork:
    def __init__(self, sim):
        self.up = _make_link(sim)
        self.down = _make_link(sim)

    def links_for(self, address):
        return self.up, self.down


def test_install_chain_taps_both_directions():
    network = _FakeNetwork(Simulator())
    chain = install_chain(network, "client.wifi", MiddleboxChain())
    assert network.up.middlebox.chain is chain
    assert network.up.middlebox.direction == "up"
    assert network.down.middlebox.chain is chain
    assert network.down.middlebox.direction == "down"


def test_build_chain_profiles():
    chain = build_chain("strip-all")
    assert isinstance(chain.boxes[0], OptionStripper)
    with pytest.raises(ValueError):
        build_chain("tarpit")

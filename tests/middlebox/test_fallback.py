"""End-to-end: MPTCP behind interfering middleboxes must fall back,
never hang (RFC 6824 Section 3.6).

Each test runs a full download through a middlebox profile on the WiFi
access links and checks both halves of the deployment story: the
transfer completes with every byte intact, and the connection ends in
the fallback state the interference dictates.
"""

import pytest

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
from repro.core.connection import MptcpConnection, MptcpListener
from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement
from repro.middlebox import build_chain, install_chain
from repro.testbed import Testbed, TestbedConfig

KB = 1024
SIZE = 96 * KB


def run_profile(profile, size=SIZE, seed=11, **spec_kwargs):
    spec = FlowSpec.mptcp(carrier="att", middlebox=profile, **spec_kwargs)
    return Measurement(spec, size, seed=seed).run()


def check_complete(result, size=SIZE):
    assert result.completed, \
        f"{result.spec.middlebox}: download did not complete"
    assert result.metrics.bytes_received >= size
    assert result.download_time is not None and result.download_time > 0


@pytest.mark.parametrize("profile", ["strip-all", "strip-capable"])
def test_stripped_handshake_falls_back_to_plain_tcp(profile):
    result = run_profile(profile)
    check_complete(result)
    assert result.metrics.fallback == "plain"


@pytest.mark.parametrize("profile", ["strip-dss", "rewrite-seq", "proxy"])
def test_broken_mappings_fall_back_to_infinite_mapping(profile):
    result = run_profile(profile)
    check_complete(result)
    assert result.metrics.fallback == "infinite"


def test_stripped_join_continues_single_path():
    # MP_JOIN rides the cellular path, so the box must sit there.
    result = run_profile("strip-join", middlebox_path="cell")
    check_complete(result)
    # The MPTCP session itself survives; only the extra subflow dies,
    # so no fallback -- and all traffic stays on the initial path.
    assert result.metrics.fallback == "none"
    assert result.metrics.cellular_fraction == 0.0


def test_clean_runs_never_fall_back():
    result = run_profile("none")
    check_complete(result)
    assert result.metrics.fallback == "none"
    assert result.metrics.cellular_fraction > 0.0


def test_probabilistic_stripping_still_completes():
    result = run_profile("strip-all", middlebox_prob=0.5)
    check_complete(result)


def test_middlebox_runs_are_deterministic():
    first = run_profile("strip-all")
    second = run_profile("strip-all")
    assert first.download_time == second.download_time
    assert first.metrics.bytes_received == second.metrics.bytes_received


# ----------------------------------------------------------------------
# The server-side pending-join queue (stripped / rejected joins)
# ----------------------------------------------------------------------

def _run_listener_scenario(profile, size=32 * KB, seed=5, path=0):
    """Drive a download through ``profile`` with direct access to the
    server-side listener internals (``path`` indexes client_addrs:
    0 = WiFi, 1 = cellular)."""
    testbed = Testbed(TestbedConfig(seed=seed))
    install_chain(testbed.network, testbed.client_addrs[path],
                  build_chain(profile))
    spec = FlowSpec.mptcp(carrier="att")
    listener = MptcpListener(
        testbed.sim, testbed.server, HTTP_PORT, spec.mptcp_config(),
        server_addrs=testbed.server_addrs,
        on_connection=lambda conn: HttpServerSession.fixed(conn, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, spec.mptcp_config())
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    testbed.run(until=120.0)
    return listener, connection, client


def test_plain_fallback_rejects_late_joins():
    listener, connection, client = _run_listener_scenario("strip-all")
    assert client.record.complete
    assert connection.fallback_mode == "plain"
    # The cellular join reached a fallen-back server connection (or a
    # parked queue that has since been purged): it must have been
    # answered with a RST, and nothing may stay parked forever.
    assert not listener._pending_joins
    assert not listener._pending_first_at


def test_stripped_join_leaves_no_pending_entries():
    listener, connection, client = _run_listener_scenario("strip-join",
                                                          path=1)
    assert client.record.complete
    assert connection.fallback_mode is None
    # The join SYN lost its MP_JOIN option, so the listener never saw
    # a token to park: the pending queue stays empty and the client's
    # cellular subflow dies without deadlocking the connection.
    assert not listener._pending_joins
    assert not listener._pending_first_at
    failed = [subflow for subflow in connection.subflows
              if subflow.endpoint is not None
              and subflow.endpoint.state == "failed"]
    assert failed, "the stripped join should have failed its subflow"

"""Test package."""

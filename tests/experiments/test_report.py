"""Tests for the report rendering helpers."""

import csv
import io

from repro.experiments.report import (
    csv_text,
    format_bytes,
    format_five_number,
    format_mean_stderr,
    format_ms,
    format_pct,
    format_seconds,
    render_table,
    write_csv,
)
from repro.experiments.stats import five_number


def test_format_bytes_uses_paper_labels():
    assert format_bytes(8 * 1024) == "8 KB"
    assert format_bytes(512 * 1024) == "512 KB"
    assert format_bytes(4 * 1024 * 1024) == "4 MB"
    assert format_bytes(512 * 1024 * 1024) == "512 MB"
    assert format_bytes(100) == "100 B"


def test_format_seconds_and_ms():
    assert format_seconds(1.2345) == "1.234s"
    assert format_seconds(None) == "-"
    assert format_ms(0.0345) == "34.5"
    assert format_ms(None) == "-"


def test_format_pct_negligible_tilde():
    assert format_pct(0.0001) == "~"
    assert format_pct(0.016) == "1.60"
    assert format_pct(0.0) == "0.00"
    assert format_pct(None) == "-"


def test_format_mean_stderr():
    assert format_mean_stderr(0.126, 0.005, scale=1000) == "126.00+-5.00"


def test_format_five_number():
    summary = five_number([1.0, 2.0, 3.0, 4.0, 5.0])
    text = format_five_number(summary)
    assert text.startswith("1.000 [")
    assert text.endswith("] 5.000")


def test_render_table_aligns_columns():
    table = render_table(["name", "value"],
                         [["wifi", 1.5], ["verizon-lte", None]],
                         title="demo")
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert "wifi" in lines[3] and "1.500" in lines[3]
    assert "verizon-lte" in lines[4] and "-" in lines[4]
    # Every data row has the same width as the header row.
    assert len({len(line) for line in lines[3:]}) == 1


def test_csv_text_round_trips():
    text = csv_text(["a", "b"], [[1, "x"], [2, None]])
    rows = list(csv.reader(io.StringIO(text)))
    assert rows == [["a", "b"], ["1", "x"], ["2", ""]]


def test_write_csv(tmp_path):
    path = tmp_path / "out.csv"
    write_csv(path, ["h1"], [[42]])
    assert path.read_text().splitlines() == ["h1", "42"]

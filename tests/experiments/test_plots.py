"""Tests for the ASCII figure renderers."""

from repro.experiments.plots import (
    boxplot_from_samples,
    render_boxplot,
    render_ccdf,
)
from repro.experiments.stats import FiveNumber, ccdf


def summary(minimum, q1, median, q3, maximum):
    return FiveNumber(minimum, q1, median, q3, maximum, count=10)


def test_boxplot_contains_all_marks():
    text = render_boxplot([("a", summary(0.0, 1.0, 2.0, 3.0, 4.0))],
                          width=41)
    line = text.splitlines()[0]
    for mark in "|[*]":
        assert mark in line
    # Median of 0..4 lands mid-canvas.
    assert line.index("*") > line.index("[") > line.index("|")
    assert line.rindex("|") > line.index("]")


def test_boxplot_aligns_labels():
    rows = [("short", summary(0, 1, 2, 3, 4)),
            ("a-much-longer-label", summary(0, 1, 2, 3, 4))]
    lines = render_boxplot(rows).splitlines()
    assert lines[0].index("|") == lines[1].index("|")


def test_boxplot_shows_median_value_and_axis():
    text = render_boxplot([("x", summary(1.0, 1.5, 2.0, 2.5, 3.0))],
                          unit="s")
    assert "2s" in text or "2.0" in text  # median annotation
    assert text.splitlines()[-1].strip().startswith("1")


def test_boxplot_empty():
    assert render_boxplot([]) == "(no data)"


def test_boxplot_degenerate_distribution():
    text = render_boxplot([("flat", summary(2.0, 2.0, 2.0, 2.0, 2.0))])
    assert "*" in text  # no crash on zero range


def test_ccdf_renders_series_and_legend():
    series = {
        "wifi": ccdf([0.02, 0.025, 0.03, 0.04]),
        "sprint": ccdf([0.2, 0.4, 0.8, 1.6]),
    }
    text = render_ccdf(series, width=40, height=8)
    assert "* sprint" in text
    assert "o wifi" in text
    assert "log x" in text


def test_ccdf_empty():
    assert render_ccdf({}) == "(no data)"
    assert render_ccdf({"a": []}) == "(no data)"


def test_ccdf_orders_series_left_to_right():
    """A series with smaller values must plot further left."""
    series = {
        "fast": ccdf([0.01] * 5 + [0.02] * 5),
        "slow": ccdf([1.0] * 5 + [2.0] * 5),
    }
    text = render_ccdf(series, width=60, height=10)
    body = [line for line in text.splitlines() if line.startswith("  |")]
    # symbols assigned alphabetically: fast='*'? sorted() gives fast
    # then slow -> fast='*', slow='o'.
    star = [line.index("*") for line in body if "*" in line]
    o_mark = [line.index("o") for line in body if "o" in line]
    assert min(star) < min(o_mark)


def test_boxplot_from_samples():
    text = boxplot_from_samples([("a", [1.0, 2.0, 3.0]),
                                 ("empty", [])])
    assert "a " in text
    assert "empty" not in text

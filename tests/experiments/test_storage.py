"""Tests for result persistence."""

import json
import warnings

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement, run_key
from repro.experiments.scenarios import download_time_rows, \
    traffic_share_rows
from repro.experiments.storage import (
    FORMAT_VERSION,
    JournalLockedError,
    ResultJournal,
    _thin,
    load_results,
    merge_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.wireless.profiles import TimeOfDay

KB = 1024


@pytest.fixture(scope="module")
def sample_results():
    return [
        Measurement(FlowSpec.mptcp(carrier="att"), 64 * KB, seed=1).run(),
        Measurement(FlowSpec.single_path("wifi"), 64 * KB, seed=1).run(),
    ]


def test_round_trip_preserves_core_fields(sample_results):
    original = sample_results[0]
    restored = result_from_dict(result_to_dict(original))
    assert restored.spec == original.spec
    assert restored.size == original.size
    assert restored.seed == original.seed
    assert restored.period == original.period
    assert restored.completed == original.completed
    assert restored.download_time == original.download_time
    assert restored.metrics.cellular_fraction == \
        original.metrics.cellular_fraction
    assert set(restored.metrics.per_path) == set(original.metrics.per_path)
    for path in original.metrics.per_path:
        assert restored.metrics.loss_rate(path) == \
            original.metrics.loss_rate(path)


def test_round_trip_preserves_row_extraction(sample_results):
    """Stored results feed the same tables as fresh ones."""
    fresh = download_time_rows(sample_results)
    restored = download_time_rows([
        result_from_dict(result_to_dict(result))
        for result in sample_results])
    assert fresh == restored
    assert traffic_share_rows(sample_results) == traffic_share_rows(
        [result_from_dict(result_to_dict(r)) for r in sample_results])


def test_sample_thinning_preserves_statistics(sample_results):
    original = sample_results[0]
    thinned = result_from_dict(result_to_dict(original, max_samples=10))
    for path, analysis in original.metrics.per_path.items():
        restored = thinned.metrics.per_path[path]
        assert len(restored.rtt_samples) <= 10
        if analysis.rtt_samples:
            assert restored.mean_rtt == pytest.approx(
                analysis.mean_rtt, rel=0.5)


def test_thin_keeps_endpoints_and_size():
    samples = [float(value) for value in range(997)]
    thinned = _thin(samples, 32)
    assert len(thinned) == 32
    assert thinned[0] == min(samples)
    assert thinned[-1] == max(samples)
    assert thinned == sorted(thinned)


def test_thin_single_sample_is_maximum():
    assert _thin([3.0, 9.0, 1.0], 1) == [9.0]


def test_thin_short_list_untouched():
    samples = [5.0, 2.0, 8.0]
    assert _thin(samples, 10) == samples
    assert _thin(samples, None) == samples


def test_thinning_preserves_maximum_sample(sample_results):
    """Regression: the stride used to drop the final (max) sample,
    truncating exactly the CCDF tails of Figures 12/13."""
    original = sample_results[0]
    stored = result_from_dict(result_to_dict(original, max_samples=10))
    for path, analysis in original.metrics.per_path.items():
        restored = stored.metrics.per_path[path]
        if analysis.rtt_samples:
            assert max(restored.rtt_samples) == max(analysis.rtt_samples)
            assert min(restored.rtt_samples) == min(analysis.rtt_samples)
    if original.metrics.ofo_delays:
        assert max(stored.metrics.ofo_delays) == \
            max(original.metrics.ofo_delays)


def test_save_and_load(tmp_path, sample_results):
    path = tmp_path / "results.jsonl"
    written = save_results(path, sample_results)
    assert written == 2
    loaded = load_results(path)
    assert len(loaded) == 2
    assert loaded[0].spec == sample_results[0].spec


def test_append_mode(tmp_path, sample_results):
    path = tmp_path / "results.jsonl"
    save_results(path, sample_results[:1])
    save_results(path, sample_results[1:], append=True)
    assert len(load_results(path)) == 2


def test_merge(tmp_path, sample_results):
    a = tmp_path / "day1.jsonl"
    b = tmp_path / "day2.jsonl"
    save_results(a, sample_results[:1])
    save_results(b, sample_results[1:])
    merged = merge_results(a, b)
    assert len(merged) == 2


def test_unknown_version_rejected(sample_results):
    data = result_to_dict(sample_results[0])
    data["version"] = 99
    with pytest.raises(ValueError):
        result_from_dict(data)


def test_version1_record_still_loads(sample_results):
    """v1 files (time-ordered thinning, pre-quantile-sketch) stay
    readable: all shipped consumers are order-insensitive."""
    data = result_to_dict(sample_results[0])
    data["version"] = 1
    restored = result_from_dict(data)
    assert restored.spec == sample_results[0].spec


def test_file_is_plain_json_lines(tmp_path, sample_results):
    path = tmp_path / "results.jsonl"
    save_results(path, sample_results)
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert record["version"] == FORMAT_VERSION
        assert "spec" in record and "metrics" in record


def test_save_failure_leaves_previous_file_intact(tmp_path, sample_results):
    """A crash mid-save must not truncate an existing results file."""
    path = tmp_path / "results.jsonl"
    save_results(path, sample_results)

    class NotAResult:
        pass

    with pytest.raises(AttributeError):
        save_results(path, [sample_results[0], NotAResult()])
    assert len(load_results(path)) == 2
    assert list(tmp_path.iterdir()) == [path], "no temp-file litter"


def test_load_skips_truncated_trailing_line(tmp_path, sample_results):
    path = tmp_path / "results.jsonl"
    save_results(path, sample_results)
    with open(path, "a") as handle:
        handle.write('{"version":1,"spec":{"mo')  # writer died here
    with pytest.warns(RuntimeWarning):
        loaded = load_results(path)
    assert len(loaded) == 2


def test_load_raises_on_corrupt_middle_line(tmp_path, sample_results):
    path = tmp_path / "results.jsonl"
    lines = [json.dumps(result_to_dict(result)) for result in sample_results]
    path.write_text(lines[0] + "\n{broken\n" + lines[1] + "\n")
    with pytest.raises(json.JSONDecodeError):
        load_results(path)


def test_run_key_distinguishes_ablation_specs():
    a = FlowSpec.mptcp(carrier="att", scheduler="minrtt")
    b = FlowSpec.mptcp(carrier="att", scheduler="roundrobin")
    assert a.label == b.label  # the ambiguity run_key must survive
    assert run_key(a, 8 * KB, 1, TimeOfDay.NIGHT) != \
        run_key(b, 8 * KB, 1, TimeOfDay.NIGHT)


def test_journal_round_trip(tmp_path, sample_results):
    path = tmp_path / "journal.jsonl"
    with ResultJournal(path) as journal:
        for result in sample_results:
            journal.record(result)
        assert len(journal) == 2
    reloaded = ResultJournal(path)
    assert reloaded.restored == 2
    for result in sample_results:
        key = run_key(result.spec, result.size, result.seed, result.period)
        assert key in reloaded
        cached = reloaded.get(key)
        assert result_to_dict(cached, max_samples=None) == \
            result_to_dict(result, max_samples=None)
    # Re-recording an existing key is a no-op, not a duplicate line.
    reloaded.record(sample_results[0])
    reloaded.close()
    assert len(path.read_text().splitlines()) == 2


def test_journal_repairs_truncated_tail_before_append(
        tmp_path, sample_results):
    """Regression: opening a journal with a partial trailing line used
    to append the next record onto that partial line, corrupting the
    file for every later load."""
    path = tmp_path / "journal.jsonl"
    with ResultJournal(path) as journal:
        journal.record(sample_results[0])
    with open(path, "a") as handle:
        handle.write('{"version":2,"spec":{"mode":"sp","carrie')
    with pytest.warns(RuntimeWarning):
        journal = ResultJournal(path)
    assert journal.restored == 1
    journal.record(sample_results[1])
    journal.close()
    # The journal must load back clean — no warning, both records.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        reloaded = load_results(path)
    assert len(reloaded) == 2
    assert reloaded[1].spec == sample_results[1].spec
    # And survive yet another open/append cycle.
    assert ResultJournal(path).restored == 2


def test_journal_restores_missing_trailing_newline(
        tmp_path, sample_results):
    """A crash between a record's JSON text and its newline must not
    make the next append glue onto a valid line."""
    path = tmp_path / "journal.jsonl"
    with ResultJournal(path) as journal:
        journal.record(sample_results[0])
    path.write_text(path.read_text().rstrip("\n"))
    journal = ResultJournal(path)
    assert journal.restored == 1
    journal.record(sample_results[1])
    journal.close()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert len(load_results(path)) == 2


def test_journal_rejects_second_live_writer(tmp_path, sample_results):
    """Two concurrent writers would race the truncation-repair scan and
    interleave appends; the advisory lock turns that into a loud error."""
    path = tmp_path / "journal.jsonl"
    with ResultJournal(path) as journal:
        journal.record(sample_results[0])
        with pytest.raises(JournalLockedError, match="another live"):
            ResultJournal(path)
        # The refused open must not have truncated or corrupted
        # anything the holder wrote.
        journal.record(sample_results[1])
    assert ResultJournal(path).restored == 2


def test_journal_lock_released_by_writer_death(tmp_path, sample_results):
    """The lock dies with the process (flock is tied to the open file
    description), so a SIGKILLed campaign never wedges its journal."""
    import os
    import signal
    import subprocess
    import sys

    path = tmp_path / "journal.jsonl"
    with ResultJournal(path) as journal:
        journal.record(sample_results[0])
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    holder = subprocess.Popen(
        [sys.executable, "-c",
         "import sys, time\n"
         "from repro.experiments.storage import ResultJournal\n"
         f"journal = ResultJournal({str(path)!r})\n"
         "print('LOCKED', flush=True)\n"
         "time.sleep(60)\n"],
        stdout=subprocess.PIPE,
        env={**os.environ,
             "PYTHONPATH": os.path.abspath(src) + os.pathsep
             + os.environ.get("PYTHONPATH", "")})
    try:
        assert holder.stdout.readline().strip() == b"LOCKED"
        with pytest.raises(JournalLockedError):
            ResultJournal(path)
        holder.send_signal(signal.SIGKILL)
        holder.wait(timeout=30)
        journal = ResultJournal(path)     # lock released by death
        assert journal.restored == 1
        journal.record(sample_results[1])
        journal.close()
    finally:
        if holder.poll() is None:
            holder.kill()
            holder.wait()
    assert len(load_results(path)) == 2

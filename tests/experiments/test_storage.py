"""Tests for result persistence."""

import json

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement
from repro.experiments.scenarios import download_time_rows, \
    traffic_share_rows
from repro.experiments.storage import (
    load_results,
    merge_results,
    result_from_dict,
    result_to_dict,
    save_results,
)

KB = 1024


@pytest.fixture(scope="module")
def sample_results():
    return [
        Measurement(FlowSpec.mptcp(carrier="att"), 64 * KB, seed=1).run(),
        Measurement(FlowSpec.single_path("wifi"), 64 * KB, seed=1).run(),
    ]


def test_round_trip_preserves_core_fields(sample_results):
    original = sample_results[0]
    restored = result_from_dict(result_to_dict(original))
    assert restored.spec == original.spec
    assert restored.size == original.size
    assert restored.seed == original.seed
    assert restored.period == original.period
    assert restored.completed == original.completed
    assert restored.download_time == original.download_time
    assert restored.metrics.cellular_fraction == \
        original.metrics.cellular_fraction
    assert set(restored.metrics.per_path) == set(original.metrics.per_path)
    for path in original.metrics.per_path:
        assert restored.metrics.loss_rate(path) == \
            original.metrics.loss_rate(path)


def test_round_trip_preserves_row_extraction(sample_results):
    """Stored results feed the same tables as fresh ones."""
    fresh = download_time_rows(sample_results)
    restored = download_time_rows([
        result_from_dict(result_to_dict(result))
        for result in sample_results])
    assert fresh == restored
    assert traffic_share_rows(sample_results) == traffic_share_rows(
        [result_from_dict(result_to_dict(r)) for r in sample_results])


def test_sample_thinning_preserves_statistics(sample_results):
    original = sample_results[0]
    thinned = result_from_dict(result_to_dict(original, max_samples=10))
    for path, analysis in original.metrics.per_path.items():
        restored = thinned.metrics.per_path[path]
        assert len(restored.rtt_samples) <= 10
        if analysis.rtt_samples:
            assert restored.mean_rtt == pytest.approx(
                analysis.mean_rtt, rel=0.5)


def test_save_and_load(tmp_path, sample_results):
    path = tmp_path / "results.jsonl"
    written = save_results(path, sample_results)
    assert written == 2
    loaded = load_results(path)
    assert len(loaded) == 2
    assert loaded[0].spec == sample_results[0].spec


def test_append_mode(tmp_path, sample_results):
    path = tmp_path / "results.jsonl"
    save_results(path, sample_results[:1])
    save_results(path, sample_results[1:], append=True)
    assert len(load_results(path)) == 2


def test_merge(tmp_path, sample_results):
    a = tmp_path / "day1.jsonl"
    b = tmp_path / "day2.jsonl"
    save_results(a, sample_results[:1])
    save_results(b, sample_results[1:])
    merged = merge_results(a, b)
    assert len(merged) == 2


def test_unknown_version_rejected(sample_results):
    data = result_to_dict(sample_results[0])
    data["version"] = 99
    with pytest.raises(ValueError):
        result_from_dict(data)


def test_file_is_plain_json_lines(tmp_path, sample_results):
    path = tmp_path / "results.jsonl"
    save_results(path, sample_results)
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert record["version"] == 1
        assert "spec" in record and "metrics" in record

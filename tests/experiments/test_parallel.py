"""Serial-vs-parallel equivalence and resumable execution."""

import warnings

import pytest

from repro.experiments import runner as runner_module
from repro.experiments.config import FlowSpec
from repro.experiments.parallel import execute_plan
from repro.experiments.runner import Campaign, CampaignSpec
from repro.experiments.storage import ResultJournal, result_to_dict
from repro.wireless.profiles import TimeOfDay

KB = 1024


def small_campaign(base_seed=7):
    return CampaignSpec(
        name="par",
        specs=(FlowSpec.single_path("wifi"), FlowSpec.mptcp(carrier="att")),
        sizes=(8 * KB, 32 * KB), repetitions=1,
        periods=(TimeOfDay.NIGHT,), base_seed=base_seed)


def full_dicts(results):
    """Every field of every result, with no sample thinning."""
    return [result_to_dict(result, max_samples=None) for result in results]


def test_parallel_equals_serial():
    spec = small_campaign()
    serial = Campaign(spec, jobs=1).run()
    parallel = Campaign(spec, jobs=4).run()
    assert full_dicts(parallel) == full_dicts(serial)


def test_jobs_zero_means_all_cores():
    spec = small_campaign()
    serial = Campaign(spec, jobs=1).run()
    auto = Campaign(spec, jobs=0).run()
    assert full_dicts(auto) == full_dicts(serial)


def test_parallel_progress_reports_every_run():
    calls = []
    spec = small_campaign()
    Campaign(spec, progress=lambda i, n, r: calls.append((i, n)),
             jobs=2).run()
    assert [index for index, _ in calls] == [1, 2, 3, 4]
    assert all(total == 4 for _, total in calls)


def test_plan_matches_serial_run_order():
    spec = small_campaign()
    plan = Campaign(spec).plan()
    results = Campaign(spec).run()
    assert [(d.spec, d.size, d.seed, d.period) for d in plan] == \
        [(r.spec, r.size, r.seed, r.period) for r in results]
    assert [d.index for d in plan] == list(range(spec.total_runs()))


def test_resume_skips_completed_cells(tmp_path, monkeypatch):
    spec = small_campaign()
    plan = Campaign(spec).plan()
    baseline = Campaign(spec).run()
    journal_path = tmp_path / "journal.jsonl"
    # Simulate a campaign killed after the first two runs.
    with ResultJournal(journal_path) as journal:
        for descriptor in plan[:2]:
            journal.record(descriptor.run())

    executed = []
    real_run = runner_module.Measurement.run

    def counting_run(self):
        executed.append((self.spec, self.size))
        return real_run(self)

    monkeypatch.setattr(runner_module.Measurement, "run", counting_run)
    resumed = Campaign(spec, jobs=1, journal=journal_path).run()
    assert len(executed) == len(plan) - 2, "completed cells must not rerun"
    assert full_dicts(resumed) == full_dicts(baseline)
    # The journal now holds the whole campaign.
    assert len(ResultJournal(journal_path)) == len(plan)


def test_parallel_resume_equals_serial(tmp_path):
    spec = small_campaign(base_seed=11)
    baseline = Campaign(spec).run()
    journal_path = tmp_path / "journal.jsonl"
    plan = Campaign(spec).plan()
    with ResultJournal(journal_path) as journal:
        journal.record(plan[1].run())
    resumed = Campaign(spec, jobs=2, journal=journal_path).run()
    assert full_dicts(resumed) == full_dicts(baseline)


def test_resume_tolerates_truncated_journal(tmp_path):
    spec = small_campaign()
    baseline = Campaign(spec).run()
    plan = Campaign(spec).plan()
    journal_path = tmp_path / "journal.jsonl"
    with ResultJournal(journal_path) as journal:
        journal.record(plan[0].run())
        journal.record(plan[1].run())
    # Chop the second record mid-line, as a crash mid-append would.
    lines = journal_path.read_text().splitlines()
    journal_path.write_text(lines[0] + "\n" + lines[1][:40])
    with pytest.warns(RuntimeWarning):
        resumed = Campaign(spec, journal=journal_path).run()
    assert full_dicts(resumed) == full_dicts(baseline)
    # Crucially, appending over the repaired truncation must leave the
    # journal loadable with every completed cell — no partial line
    # glued to a fresh record, no silently dropped rows.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        reopened = ResultJournal(journal_path)
    assert reopened.restored == len(plan)
    for descriptor in plan:
        assert descriptor.key in reopened
    reopened.close()


class _BoomDescriptor:
    """A picklable campaign cell whose run always fails."""

    key = "boom-cell"
    index = -1

    def run(self):
        raise RuntimeError("boom")


def test_worker_failure_journals_finished_runs(tmp_path):
    """A failed worker must not discard siblings that completed while
    it was failing: their results land in the journal before the error
    propagates, so a re-invocation resumes instead of recomputing."""
    spec = small_campaign()
    plan = Campaign(spec).plan()
    cells = [_BoomDescriptor()] + list(plan[:3])
    journal_path = tmp_path / "journal.jsonl"
    with pytest.raises(RuntimeError, match="boom"):
        execute_plan(cells, jobs=2, journal=journal_path)
    # Pool shutdown drains the three healthy cells; all must be kept.
    journal = ResultJournal(journal_path)
    assert journal.restored == 3
    for descriptor in plan[:3]:
        assert descriptor.key in journal
    journal.close()


def test_execute_plan_empty():
    assert execute_plan([], jobs=4) == []


def test_journal_restores_before_executing(tmp_path):
    """Restored cells are reported through progress before fresh runs."""
    spec = small_campaign()
    plan = Campaign(spec).plan()
    journal_path = tmp_path / "journal.jsonl"
    with ResultJournal(journal_path) as journal:
        journal.record(plan[2].run())
    seen = []
    Campaign(spec, journal=journal_path,
             progress=lambda i, n, r: seen.append(r.seed)).run()
    assert seen[0] == plan[2].seed
    assert len(seen) == len(plan)

"""Tests for the self-consistency validation harness."""

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.validation import Check, render_checks, \
    validate_transfer


def test_validation_passes_on_healthy_simulator():
    checks = validate_transfer(size=512 * 1024, seed=7)
    failed = [check for check in checks if not check.ok]
    assert not failed, render_checks(checks)
    names = {check.name for check in checks}
    assert "download-time" in names
    assert "stream-conservation" in names
    assert any(name.startswith("retransmits-") for name in names)


def test_validation_on_lossy_pairing():
    """Sprint + WiFi: retransmissions happen, ledgers still agree."""
    checks = validate_transfer(FlowSpec.mptcp(carrier="sprint"),
                               size=1024 * 1024, seed=9)
    failed = [check for check in checks if not check.ok]
    assert not failed, render_checks(checks)


def test_validation_rejects_single_path_spec():
    with pytest.raises(ValueError):
        validate_transfer(FlowSpec.single_path("wifi"))


def test_render_checks_format():
    text = render_checks([Check("a", True, "fine"),
                          Check("b", False, "broken")])
    assert "[ok ] a: fine" in text
    assert "[FAIL] b: broken" in text
    assert "1/2 consistency checks passed" in text

"""Cost-aware dispatch: the cost model, LJF ordering, chunking, the
bounded in-flight submission window, and affinity-aware job counts."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cache import CostModel, build_tasks, chunk_positions, \
    order_longest_first
from repro.cache.cost import SETUP_COST_S, TINY_COST_S
from repro.experiments import parallel as parallel_module
from repro.experiments.config import FlowSpec
from repro.experiments.parallel import default_jobs, execute_plan
from repro.experiments.runner import Campaign, CampaignSpec, \
    RunDescriptor
from repro.experiments.storage import result_to_dict
from repro.obs.telemetry import RunLog, run_log_wall_times
from repro.wireless.profiles import TimeOfDay

KB = 1024
MB = 1024 * 1024


def _descriptor(index, spec, size, seed=1):
    return RunDescriptor(index=index, spec=spec, size=size, seed=seed,
                         period=TimeOfDay.NIGHT)


def full_dicts(results):
    return [result_to_dict(result, max_samples=None) for result in results]


# ----------------------------------------------------------------------
# default_jobs affinity
# ----------------------------------------------------------------------

def test_default_jobs_respects_cpu_affinity(monkeypatch):
    monkeypatch.setattr(parallel_module.os, "sched_getaffinity",
                        lambda pid: {0, 1, 2}, raising=False)
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 64)
    assert default_jobs() == 3


def test_default_jobs_falls_back_to_cpu_count(monkeypatch):
    monkeypatch.delattr(parallel_module.os, "sched_getaffinity",
                        raising=False)
    monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 5)
    assert default_jobs() == 5


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------

def test_heuristic_ranks_by_size_and_config():
    model = CostModel()
    wifi = FlowSpec.single_path("wifi")
    mp2 = FlowSpec.mptcp(carrier="att")
    mp4 = FlowSpec.mptcp(carrier="att", paths=4)
    small_sp = model.estimate(_descriptor(0, wifi, 64 * KB))
    big_sp = model.estimate(_descriptor(1, wifi, 16 * MB))
    big_mp2 = model.estimate(_descriptor(2, mp2, 16 * MB))
    big_mp4 = model.estimate(_descriptor(3, mp4, 16 * MB))
    assert small_sp < big_sp < big_mp2 < big_mp4


def test_ljf_fronts_world_cells():
    """Satellite: a shared-world cell must outrank the equivalent
    stand-alone cell at the same size, and by a calibrated (modest)
    margin -- the hybrid fluid kernel adds tens of percent, not
    multiples, on top of the vectorized packet core."""
    model = CostModel()
    mp2 = FlowSpec.mptcp(carrier="att")
    world = FlowSpec.mptcp(carrier="att", world="closed-8")
    plan = [
        _descriptor(0, mp2, 2 * MB),
        _descriptor(1, world, 2 * MB),
        _descriptor(2, mp2, 2 * MB),
    ]
    order = order_longest_first(range(len(plan)), plan, model)
    assert order[0] == 1, "the world cell leads at equal size"
    plain = model.estimate(plan[0])
    contended = model.estimate(plan[1])
    assert 1.05 * plain < contended < 2.0 * plain, \
        "world premium is real but calibrated, not a many-x blowup"


def test_observations_override_the_heuristic():
    model = CostModel()
    wifi = FlowSpec.single_path("wifi")
    descriptor = _descriptor(0, wifi, 2 * MB)
    model.observe(descriptor, 3.0)
    model.observe(descriptor, 5.0)
    assert model.estimate(descriptor) == pytest.approx(4.0)
    assert model.calibrated == 1


def test_same_identity_scales_to_other_sizes():
    model = CostModel()
    wifi = FlowSpec.single_path("wifi")
    model.observe(_descriptor(0, wifi, 2 * MB), SETUP_COST_S + 2.0)
    scaled = model.estimate(_descriptor(1, wifi, 4 * MB))
    assert scaled == pytest.approx(SETUP_COST_S + 4.0)


def test_descriptor_without_spec_gets_default_cost():
    class Bare:
        key = "bare"

        def run(self):
            raise NotImplementedError

    assert CostModel().estimate(Bare()) == SETUP_COST_S


def test_calibration_from_run_log(tmp_path):
    path = tmp_path / "run_log.jsonl"
    wifi = FlowSpec.single_path("wifi")
    with RunLog(path) as log:
        log.log("start", key="x", spec=wifi.identity, size=2 * MB)
        log.log("finish", key="x", spec=wifi.identity, size=2 * MB,
                duration_s=7.5)
        log.log("finish", key="y", spec=wifi.identity, size=2 * MB,
                duration_s=8.5)
        log.log("fail", key="z", spec=wifi.identity, size=2 * MB,
                duration_s=99.0)
    times = run_log_wall_times(path)
    assert times == {(wifi.identity, 2 * MB): [7.5, 8.5]}
    model = CostModel.from_run_log(path)
    assert model.estimate(_descriptor(0, wifi, 2 * MB)) == \
        pytest.approx(8.0)


def test_wall_times_parse_size_from_old_log_keys(tmp_path):
    path = tmp_path / "run_log.jsonl"
    with RunLog(path) as log:
        log.log("finish", key="mode=sp;x=1|65536|9|night",
                spec="mode=sp;x=1", duration_s=1.5)
    assert run_log_wall_times(path) == {("mode=sp;x=1", 65536): [1.5]}


# ----------------------------------------------------------------------
# Ordering and chunking
# ----------------------------------------------------------------------

def _mixed_plan():
    wifi = FlowSpec.single_path("wifi")
    mp2 = FlowSpec.mptcp(carrier="att")
    return [
        _descriptor(0, wifi, 8 * KB),
        _descriptor(1, mp2, 16 * MB),
        _descriptor(2, wifi, 8 * KB),
        _descriptor(3, wifi, 16 * MB),
        _descriptor(4, mp2, 8 * KB),
        _descriptor(5, wifi, 8 * KB),
    ]


def test_ljf_puts_expensive_cells_first():
    plan = _mixed_plan()
    order = order_longest_first(range(len(plan)), plan, CostModel())
    assert order[:2] == [1, 3], "16 MB cells lead, MPTCP before SP"
    assert order[2] == 4, "MPTCP 8 KB outranks SP 8 KB"
    assert order[3:] == [0, 2, 5], "ties keep plan order"


def test_chunking_batches_tiny_cells_only():
    plan = _mixed_plan()
    model = CostModel()
    order = order_longest_first(range(len(plan)), plan, model)
    tasks = chunk_positions(order, plan, model, chunk=2)
    assert tasks == [[1], [3], [4, 0], [2, 5]], \
        "expensive cells travel alone; tiny cells pack in pairs"
    assert chunk_positions(order, plan, model, chunk=1) == \
        [[position] for position in order]


def test_chunking_respects_tiny_threshold():
    plan = _mixed_plan()
    model = CostModel()
    for descriptor in plan:
        model.observe(descriptor, TINY_COST_S * 2)  # nothing is tiny
    tasks = chunk_positions(range(len(plan)), plan, model, chunk=4)
    assert all(len(task) == 1 for task in tasks)


def test_build_tasks_caps_chunk_to_keep_workers_busy():
    wifi = FlowSpec.single_path("wifi")
    plan = [_descriptor(index, wifi, 8 * KB) for index in range(8)]
    tasks = build_tasks(range(8), plan, CostModel(), "ljf",
                        chunk=64, workers=4)
    assert len(tasks) >= 4, "batching must never starve the pool"
    with pytest.raises(ValueError, match="dispatch"):
        build_tasks(range(8), plan, CostModel(), "sjf", 1, 4)


# ----------------------------------------------------------------------
# End-to-end determinism of the new dispatch paths
# ----------------------------------------------------------------------

def small_campaign(base_seed=7):
    return CampaignSpec(
        name="dispatch",
        specs=(FlowSpec.single_path("wifi"), FlowSpec.mptcp(carrier="att")),
        sizes=(8 * KB, 32 * KB), repetitions=1,
        periods=(TimeOfDay.NIGHT,), base_seed=base_seed)


@pytest.mark.parametrize("kwargs", [
    dict(jobs=2, dispatch="plan"),
    dict(jobs=2, dispatch="ljf"),
    dict(jobs=2, dispatch="ljf", chunk=3),
    dict(jobs=2, window=1),
])
def test_dispatch_paths_equal_serial(kwargs):
    spec = small_campaign()
    serial = Campaign(spec, jobs=1).run()
    assert full_dicts(Campaign(spec, **kwargs).run()) == \
        full_dicts(serial)


# ----------------------------------------------------------------------
# Bounded in-flight window
# ----------------------------------------------------------------------

class _TrackingPool(ThreadPoolExecutor):
    """A pool that records the peak number of in-flight futures."""

    peak = 0

    def __init__(self, max_workers=None, **kwargs):
        super().__init__(max_workers=max_workers)
        self._lock = threading.Lock()
        self._outstanding = 0

    def submit(self, fn, *args, **kwargs):
        with self._lock:
            self._outstanding += 1
            _TrackingPool.peak = max(_TrackingPool.peak,
                                     self._outstanding)
        future = super().submit(fn, *args, **kwargs)

        def note_done(_):
            with self._lock:
                self._outstanding -= 1

        future.add_done_callback(note_done)
        return future


def test_inflight_futures_never_exceed_jobs_times_window(monkeypatch):
    """Satellite: submission is streamed — the whole plan is never
    materialized as futures upfront."""
    wifi = FlowSpec.single_path("wifi")
    plan = [_descriptor(index, wifi, 8 * KB, seed=index)
            for index in range(12)]
    monkeypatch.setattr(parallel_module, "_pool_factory", _TrackingPool)
    _TrackingPool.peak = 0
    jobs, window = 2, 2
    serial = [descriptor.run() for descriptor in plan]
    windowed = execute_plan(plan, jobs=jobs, window=window)
    assert 0 < _TrackingPool.peak <= jobs * window
    assert full_dicts(windowed) == full_dicts(serial)


def test_window_of_one_still_completes(monkeypatch):
    wifi = FlowSpec.single_path("wifi")
    plan = [_descriptor(index, wifi, 8 * KB, seed=index)
            for index in range(5)]
    monkeypatch.setattr(parallel_module, "_pool_factory", _TrackingPool)
    _TrackingPool.peak = 0
    results = execute_plan(plan, jobs=3, window=1)
    assert _TrackingPool.peak <= 3
    assert len(results) == 5 and all(r is not None for r in results)

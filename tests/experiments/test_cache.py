"""The cross-campaign run cache: round-trips, invalidation,
corruption tolerance, and journal/cache key unification."""

import json
import os
import warnings

import pytest

from repro.cache import RunCache, cache_digest
from repro.cache.store import CACHE_SCHEMA
from repro.experiments import storage as storage_module
from repro.experiments.config import FlowSpec
from repro.experiments.runner import Campaign, CampaignSpec, \
    descriptor_key
from repro.experiments.storage import FORMAT_VERSION, ResultJournal, \
    result_to_dict
from repro.wireless.profiles import TimeOfDay

KB = 1024


def small_campaign(base_seed=7):
    return CampaignSpec(
        name="cache",
        specs=(FlowSpec.single_path("wifi"), FlowSpec.mptcp(carrier="att")),
        sizes=(8 * KB, 32 * KB), repetitions=1,
        periods=(TimeOfDay.NIGHT,), base_seed=base_seed)


def full_dicts(results):
    return [result_to_dict(result, max_samples=None) for result in results]


@pytest.fixture(scope="module")
def baseline():
    spec = small_campaign()
    return Campaign(spec).run()


# ----------------------------------------------------------------------
# Store basics
# ----------------------------------------------------------------------

def test_put_get_round_trip_full_fidelity(tmp_path, baseline):
    cache = RunCache(tmp_path / "cache")
    result = baseline[0]
    key = cache.key_of(result)
    assert cache.put(result)
    assert not cache.put(result), "puts are idempotent per key"
    restored = cache.get(key)
    assert full_dicts([restored]) == full_dicts([result])
    assert cache.stats()["hits"] == 1
    cache.close()


def test_store_is_sharded_and_atomic(tmp_path, baseline):
    root = tmp_path / "cache"
    with RunCache(root) as cache:
        for result in baseline:
            cache.put(result)
        digests = [cache_digest(cache.key_of(result), FORMAT_VERSION)
                   for result in baseline]
    for digest in digests:
        path = root / "objects" / digest[:2] / f"{digest}.json"
        assert path.exists(), "objects live under two-hex shard dirs"
    # Atomic write discipline leaves no temp droppings behind.
    leftovers = [name for name in os.listdir(root)
                 if name.endswith(".tmp")]
    assert leftovers == []
    # O(1) membership: the index knows every entry without a dir scan.
    reopened = RunCache(root)
    assert len(reopened) == len(baseline)
    for result in baseline:
        assert reopened.key_of(result) in reopened
    reopened.close()


def test_miss_returns_none_and_counts(tmp_path):
    with RunCache(tmp_path / "cache") as cache:
        assert cache.get("no|such|cell|night") is None
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 1,
                                 "puts": 0, "hit_rate": 0.0}


def test_crash_between_object_and_index_is_a_safe_miss(tmp_path,
                                                       baseline):
    """An object whose index line never landed reads as a miss and is
    re-put idempotently — never a crash, never a stale row."""
    root = tmp_path / "cache"
    with RunCache(root) as cache:
        cache.put(baseline[0])
        key = cache.key_of(baseline[0])
    (root / "index.jsonl").write_text("")  # the index append "lost"
    with RunCache(root) as cache:
        assert cache.get(key) is None
        assert cache.put(baseline[0])
        assert full_dicts([cache.get(key)]) == full_dicts([baseline[0]])


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------

def test_format_version_bump_is_a_full_miss(tmp_path, baseline):
    root = tmp_path / "cache"
    with RunCache(root) as cache:
        for result in baseline:
            cache.put(result)
        keys = [cache.key_of(result) for result in baseline]
    bumped = RunCache(root, format_version=FORMAT_VERSION + 1)
    assert bumped.invalidated
    assert len(bumped) == 0, "explicit invalidation wipes the store"
    for key in keys:
        assert bumped.get(key) is None
    bumped.close()
    # Reopening at the *old* version after the wipe must not
    # resurrect anything either.
    with RunCache(root, format_version=FORMAT_VERSION) as reverted:
        for key in keys:
            assert reverted.get(key) is None


def test_cache_tracks_live_format_version(tmp_path, baseline,
                                          monkeypatch):
    """The default version is read from the storage module at open, so
    bumping FORMAT_VERSION invalidates without any cache-side edit."""
    root = tmp_path / "cache"
    with RunCache(root) as cache:
        cache.put(baseline[0])
        key = cache.key_of(baseline[0])
    monkeypatch.setattr(storage_module, "FORMAT_VERSION",
                        FORMAT_VERSION + 1)
    with RunCache(root) as cache:
        assert cache.format_version == FORMAT_VERSION + 1
        assert cache.get(key) is None


def test_version_is_part_of_the_address(tmp_path, baseline):
    """Even a tampered meta stamp cannot serve a stale row: the
    format version is baked into the content address itself."""
    assert cache_digest("k", 2) != cache_digest("k", 3)
    root = tmp_path / "cache"
    with RunCache(root, format_version=FORMAT_VERSION) as cache:
        cache.put(baseline[0])
        key = cache.key_of(baseline[0])
    # Forge the stamp so open-time invalidation is bypassed.
    (root / "meta.json").write_text(json.dumps(
        {"schema": CACHE_SCHEMA, "format_version": FORMAT_VERSION + 1}))
    with RunCache(root, format_version=FORMAT_VERSION + 1) as cache:
        assert cache.get(key) is None


# ----------------------------------------------------------------------
# Corruption tolerance
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mangle", ["truncate", "garbage", "remove",
                                    "wrong_key"])
def test_corrupt_entry_is_skipped_with_a_warning(tmp_path, baseline,
                                                 mangle):
    root = tmp_path / "cache"
    with RunCache(root) as cache:
        cache.put(baseline[0])
        key = cache.key_of(baseline[0])
        digest = cache_digest(key, FORMAT_VERSION)
    path = root / "objects" / digest[:2] / f"{digest}.json"
    if mangle == "truncate":
        path.write_text(path.read_text()[:40])
    elif mangle == "garbage":
        path.write_text("{not json")
    elif mangle == "remove":
        path.unlink()
    else:
        wrapper = json.loads(path.read_text())
        wrapper["key"] = "some|other|cell|night"
        path.write_text(json.dumps(wrapper))
    with RunCache(root) as cache:
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.get(key) is None
        # The campaign recomputes and re-puts; the entry heals.
        assert cache.put(baseline[0])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert full_dicts([cache.get(key)]) == full_dicts(
                [baseline[0]])


def test_campaign_survives_corrupted_cache(tmp_path, baseline):
    """End to end: a half-corrupted cache yields a complete, correct
    campaign — corrupt cells recompute, intact cells hit."""
    spec = small_campaign()
    root = tmp_path / "cache"
    Campaign(spec, cache=str(root)).run()   # populate
    with RunCache(root) as cache:
        digest = cache_digest(cache.key_of(baseline[0]), FORMAT_VERSION)
    (root / "objects" / digest[:2] / f"{digest}.json").write_text("{boom")
    with pytest.warns(RuntimeWarning, match="corrupt"):
        results = Campaign(spec, cache=str(root)).run()
    assert full_dicts(results) == full_dicts(baseline)


# ----------------------------------------------------------------------
# Campaign integration + key unification
# ----------------------------------------------------------------------

def test_cold_then_warm_campaign_is_byte_identical(tmp_path, baseline):
    spec = small_campaign()
    root = tmp_path / "cache"
    cold = Campaign(spec, cache=str(root)).run()
    assert full_dicts(cold) == full_dicts(baseline)
    warm_cache = RunCache(root)
    warm = Campaign(spec, cache=warm_cache).run()
    assert full_dicts(warm) == full_dicts(baseline)
    assert warm_cache.hits == len(baseline), "every cell must hit"
    assert warm_cache.hit_rate == 1.0
    warm_cache.close()


def test_cache_shared_across_campaign_names_only_on_equal_cells(
        tmp_path, baseline):
    """Cells are shared iff their descriptor keys match: an otherwise
    identical campaign under another name derives different seeds, so
    it must miss — no false sharing."""
    root = tmp_path / "cache"
    Campaign(small_campaign(), cache=str(root)).run()
    other = CampaignSpec(
        name="cache-renamed",
        specs=small_campaign().specs, sizes=small_campaign().sizes,
        repetitions=1, periods=(TimeOfDay.NIGHT,), base_seed=7)
    probe = RunCache(root)
    Campaign(other, cache=probe).run()
    assert probe.hits == 0
    probe.close()
    # Whereas the *same* campaign spec re-run hits every cell.
    probe = RunCache(root)
    Campaign(small_campaign(), cache=probe).run()
    assert probe.hits == len(baseline)
    probe.close()


def test_journal_resumed_and_cache_hit_results_are_equal(tmp_path,
                                                         baseline):
    """Satellite: the journal and the cache key on the same
    descriptor_key(), so a journal-resumed cell and a cache-hit cell
    return equal RunResults."""
    spec = small_campaign()
    plan = Campaign(spec).plan()
    journal_path = tmp_path / "journal.jsonl"
    cache_root = tmp_path / "cache"
    Campaign(spec, journal=str(journal_path)).run()      # fill journal
    Campaign(spec, cache=str(cache_root)).run()          # fill cache
    via_journal = Campaign(spec, journal=str(journal_path)).run()
    cache = RunCache(cache_root)
    via_cache = Campaign(spec, cache=cache).run()
    assert cache.hits == len(plan)
    cache.close()
    assert full_dicts(via_journal) == full_dicts(via_cache)
    assert full_dicts(via_journal) == full_dicts(baseline)
    # The two layers literally share the key function.
    with ResultJournal(journal_path) as journal:
        for descriptor in plan:
            key = descriptor_key(descriptor.spec, descriptor.size,
                                 descriptor.seed, descriptor.period)
            assert key == descriptor.key
            assert key in journal
            assert journal.key_of(journal.get(key)) == key


def test_cache_hits_backfill_the_journal_and_vice_versa(tmp_path,
                                                        baseline):
    spec = small_campaign()
    plan = Campaign(spec).plan()
    cache_root = tmp_path / "cache"
    journal_path = tmp_path / "journal.jsonl"
    Campaign(spec, cache=str(cache_root)).run()
    # Cache-hit cells still land in a fresh journal: crash-resume
    # stays complete even when nothing was computed.
    Campaign(spec, cache=str(cache_root),
             journal=str(journal_path)).run()
    with ResultJournal(journal_path) as journal:
        assert journal.restored == len(plan)
    # And journal-restored cells warm a fresh cache.
    fresh_root = tmp_path / "cache2"
    fresh = RunCache(fresh_root)
    Campaign(spec, cache=fresh, journal=str(journal_path)).run()
    assert len(fresh) == len(plan)
    assert fresh.puts == len(plan)
    fresh.close()

"""Tests for the reproduction scorecard."""

from repro.experiments.scorecard import (
    CLAIM_CHECKS,
    ClaimResult,
    _Lab,
    _check_offload,
    _check_small_flows,
    render_scorecard,
)


def test_claim_registry_covers_contributions():
    """One check per Section 1 contribution bullet (and then some)."""
    names = {check.__name__ for check in CLAIM_CHECKS}
    assert len(names) == len(CLAIM_CHECKS) >= 7
    for expected in ("_check_robustness", "_check_small_flows",
                     "_check_large_flows", "_check_offload",
                     "_check_controllers"):
        assert expected in names


def test_render_scorecard_format():
    results = [
        ClaimResult("a", "first claim", True, "detail one"),
        ClaimResult("b", "second claim", False, "detail two"),
    ]
    text = render_scorecard(results)
    assert "[PASS] a: first claim" in text
    assert "[FAIL] b: second claim" in text
    assert "1/2 headline claims reproduced" in text
    assert "detail one" in text


def test_lab_caches_measurements():
    from repro.experiments.config import FlowSpec

    lab = _Lab(seeds=[81])
    spec = FlowSpec.single_path("wifi")
    first = lab.result(spec, 8 * 1024, 81)
    second = lab.result(spec, 8 * 1024, 81)
    assert first is second


def test_individual_checks_produce_grades():
    lab = _Lab(seeds=[81, 82, 83])
    small = _check_small_flows(lab)
    assert small.claim_id == "small-flows"
    assert small.passed, small.detail
    offload = _check_offload(lab)
    assert offload.passed, offload.detail

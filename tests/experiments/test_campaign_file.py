"""Tests for JSON campaign definitions."""

import json

import pytest

from repro.experiments.campaign_file import (
    campaign_from_dict,
    format_size,
    load_campaign,
    parse_size,
    save_campaign,
)
from repro.experiments.runner import Campaign
from repro.experiments.scenarios import baseline_campaign
from repro.wireless.profiles import TimeOfDay

KB, MB = 1024, 1024 ** 2


def test_parse_size_formats():
    assert parse_size(8192) == 8192
    assert parse_size("8 KB") == 8 * KB
    assert parse_size("512KB") == 512 * KB
    assert parse_size("4 MB") == 4 * MB
    assert parse_size("1.5 MB") == int(1.5 * MB)
    assert parse_size("100") == 100
    assert parse_size("2 gb") == 2 * 1024 ** 3


def test_parse_size_rejects_garbage():
    with pytest.raises(ValueError):
        parse_size("lots")
    with pytest.raises(ValueError):
        parse_size("-5 KB")
    with pytest.raises(ValueError):
        parse_size(0)


def test_format_size_round_trips():
    for size in (8 * KB, 512 * KB, 4 * MB, 100, 3 * KB):
        assert parse_size(format_size(size)) == size


def test_campaign_from_dict_minimal():
    spec = campaign_from_dict({
        "name": "mini",
        "sizes": ["8 KB"],
        "flows": [{"mode": "sp", "interface": "wifi"}],
    })
    assert spec.name == "mini"
    assert spec.sizes == (8 * KB,)
    assert spec.specs[0].label == "SP-WiFi"
    assert spec.repetitions == 3  # CampaignSpec default


def test_campaign_from_dict_full():
    spec = campaign_from_dict({
        "name": "study",
        "repetitions": 7,
        "base_seed": 99,
        "periods": ["night", "evening"],
        "sizes": [1024, "2 MB"],
        "flows": [
            {"mode": "mp", "carrier": "verizon", "controller": "olia",
             "paths": 4},
        ],
    })
    assert spec.repetitions == 7
    assert spec.base_seed == 99
    assert spec.periods == (TimeOfDay.NIGHT, TimeOfDay.EVENING)
    assert spec.specs[0].label == "MP-4 (olia)"


def test_campaign_from_dict_validates():
    with pytest.raises(ValueError):
        campaign_from_dict({"name": "x", "sizes": [1]})  # no flows
    with pytest.raises(ValueError):
        campaign_from_dict({"name": "x", "sizes": [1], "flows": [],
                            "bogus": True})
    with pytest.raises(TypeError):
        campaign_from_dict({"name": "x", "sizes": [1],
                            "flows": [{"mode": "sp", "nope": 1}]})


def test_round_trip_preserves_campaign(tmp_path):
    original = baseline_campaign(repetitions=2)
    path = tmp_path / "baseline.json"
    save_campaign(original, path)
    loaded = load_campaign(path)
    assert loaded == original


def test_saved_file_is_readable_json(tmp_path):
    path = tmp_path / "campaign.json"
    save_campaign(baseline_campaign(), path)
    data = json.loads(path.read_text())
    assert data["name"] == "baseline"
    assert any(flow.get("carrier") == "sprint" for flow in data["flows"])
    # Defaults are omitted to keep the file human-scale.
    sp_wifi = data["flows"][0]
    assert "penalization" not in sp_wifi


def test_loaded_campaign_runs(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps({
        "name": "tiny",
        "repetitions": 1,
        "periods": ["night"],
        "sizes": ["8 KB"],
        "flows": [{"mode": "sp", "interface": "wifi"},
                  {"mode": "mp", "carrier": "att"}],
    }))
    spec = load_campaign(path)
    results = Campaign(spec).run()
    assert len(results) == 2
    assert all(result.completed for result in results)

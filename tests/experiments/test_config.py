"""Tests for FlowSpec labels and derived configurations."""

import pytest

from repro.experiments.config import FlowSpec


def test_single_path_labels():
    assert FlowSpec.single_path("wifi").label == "SP-WiFi"
    assert FlowSpec.single_path("cell", carrier="att").label == "SP-ATT"
    assert FlowSpec.single_path("cell", carrier="verizon").label == "SP-VZW"
    assert FlowSpec.single_path("cell", carrier="sprint").label == "SP-Sprint"


def test_mptcp_labels_match_figures():
    assert FlowSpec.mptcp().label == "MP-2"
    assert FlowSpec.mptcp(controller="olia").label == "MP-2 (olia)"
    assert FlowSpec.mptcp(controller="reno", paths=4).label == "MP-4 (reno)"


def test_mode_validation():
    with pytest.raises(ValueError):
        FlowSpec(mode="hybrid")
    with pytest.raises(ValueError):
        FlowSpec(mode="sp", interface="bluetooth")
    with pytest.raises(ValueError):
        FlowSpec(mode="mp", paths=3)


def test_server_interfaces_follow_path_count():
    assert FlowSpec.mptcp(paths=2).server_interfaces == 1
    assert FlowSpec.mptcp(paths=4).server_interfaces == 2
    assert FlowSpec.single_path("wifi").server_interfaces == 1


def test_tcp_config_carries_paper_knobs():
    spec = FlowSpec.mptcp(ssthresh=32 * 1024, rcv_buffer=2 ** 20)
    tcp = spec.tcp_config()
    assert tcp.initial_ssthresh == 32 * 1024
    assert tcp.rcv_buffer == 2 ** 20


def test_default_knobs_match_section_3_1():
    spec = FlowSpec.mptcp()
    assert spec.ssthresh == 64 * 1024
    assert spec.rcv_buffer == 8 * 1024 * 1024
    assert spec.penalization is False
    assert spec.scheduler == "minrtt"
    tcp = spec.tcp_config()
    assert tcp.initial_window_segments == 10
    assert tcp.use_sack is True


def test_mptcp_config_mirrors_spec():
    spec = FlowSpec.mptcp(controller="olia", simultaneous_syn=True,
                          penalization=True, scheduler="roundrobin")
    config = spec.mptcp_config()
    assert config.controller == "olia"
    assert config.simultaneous_syn is True
    assert config.penalization is True
    assert config.scheduler == "roundrobin"


def test_mptcp_config_rejected_for_single_path():
    with pytest.raises(RuntimeError):
        FlowSpec.single_path("wifi").mptcp_config()


def test_with_creates_modified_copy():
    base = FlowSpec.mptcp()
    changed = base.with_(controller="olia")
    assert changed.controller == "olia"
    assert base.controller == "coupled"
    assert changed != base


def test_specs_are_hashable_for_grouping():
    assert {FlowSpec.mptcp(): 1}[FlowSpec.mptcp()] == 1

"""Tests for Measurement and Campaign."""


from repro.experiments.config import FlowSpec
from repro.experiments.runner import Campaign, CampaignSpec, Measurement
from repro.wireless.profiles import TimeOfDay

KB = 1024


def test_measurement_completes_single_path():
    result = Measurement(FlowSpec.single_path("wifi"), 64 * KB, seed=1).run()
    assert result.completed
    assert result.download_time > 0
    assert result.subflow_count == 0
    assert result.metrics.per_path.keys() == {"wifi"}


def test_measurement_completes_mptcp():
    result = Measurement(FlowSpec.mptcp(carrier="att"), 64 * KB, seed=1).run()
    assert result.completed
    assert result.subflow_count == 2


def test_measurement_is_deterministic():
    spec = FlowSpec.mptcp(carrier="verizon")
    a = Measurement(spec, 128 * KB, seed=9).run()
    b = Measurement(spec, 128 * KB, seed=9).run()
    assert a.download_time == b.download_time
    assert a.metrics.cellular_fraction == b.metrics.cellular_fraction


def test_measurement_seed_changes_outcome():
    spec = FlowSpec.mptcp(carrier="att")
    a = Measurement(spec, 512 * KB, seed=1).run()
    b = Measurement(spec, 512 * KB, seed=2).run()
    assert a.download_time != b.download_time


def test_sp_cell_uses_only_cellular():
    result = Measurement(FlowSpec.single_path("cell", carrier="att"),
                         64 * KB, seed=1).run()
    assert result.completed
    assert result.metrics.cellular_fraction == 1.0


def test_campaign_runs_full_matrix():
    spec = CampaignSpec(
        name="t", specs=(FlowSpec.single_path("wifi"),
                         FlowSpec.mptcp(carrier="att")),
        sizes=(8 * KB, 64 * KB), repetitions=2,
        periods=(TimeOfDay.NIGHT,), base_seed=5)
    campaign = Campaign(spec)
    results = campaign.run()
    assert len(results) == spec.total_runs() == 8
    assert campaign.completed_fraction() == 1.0
    groups = campaign.group()
    assert len(groups) == 4
    assert all(len(bucket) == 2 for bucket in groups.values())


def test_campaign_is_reproducible():
    def run():
        spec = CampaignSpec(
            name="t", specs=(FlowSpec.mptcp(carrier="att"),),
            sizes=(64 * KB,), repetitions=2, periods=(TimeOfDay.NIGHT,),
            base_seed=5)
        campaign = Campaign(spec)
        campaign.run()
        return [r.download_time for r in campaign.results]

    assert run() == run()


def test_campaign_download_times_helper():
    flow = FlowSpec.single_path("wifi")
    spec = CampaignSpec(name="t", specs=(flow,), sizes=(8 * KB,),
                        repetitions=3, periods=(TimeOfDay.NIGHT,))
    campaign = Campaign(spec)
    campaign.run()
    times = campaign.download_times(flow, 8 * KB)
    assert len(times) == 3
    assert all(t > 0 for t in times)


def test_campaign_periods_vary_environment():
    flow = FlowSpec.single_path("wifi")
    spec = CampaignSpec(name="t", specs=(flow,), sizes=(64 * KB,),
                        repetitions=1,
                        periods=(TimeOfDay.NIGHT, TimeOfDay.EVENING))
    campaign = Campaign(spec)
    results = campaign.run()
    assert {r.period for r in results} == {TimeOfDay.NIGHT,
                                           TimeOfDay.EVENING}


def test_campaign_progress_callback():
    calls = []
    flow = FlowSpec.single_path("wifi")
    spec = CampaignSpec(name="t", specs=(flow,), sizes=(8 * KB,),
                        repetitions=2, periods=(TimeOfDay.NIGHT,))
    Campaign(spec, progress=lambda i, n, r: calls.append((i, n))).run()
    assert calls == [(1, 2), (2, 2)]


def test_campaign_seeds_distinguish_ablation_specs():
    """Regression: seeds derived from label+carrier alone collide for
    specs that differ only in a protocol knob (e.g. the scheduler),
    silently correlating their 'independent' runs."""
    a = FlowSpec.mptcp(carrier="att", scheduler="minrtt")
    b = FlowSpec.mptcp(carrier="att", scheduler="roundrobin")
    assert a.label == b.label and a.carrier == b.carrier
    spec = CampaignSpec(name="t", specs=(a, b), sizes=(8 * KB,),
                        repetitions=1, periods=(TimeOfDay.NIGHT,))
    plan = Campaign(spec).plan()
    assert len({descriptor.seed for descriptor in plan}) == len(plan) == 2


def test_campaign_seeds_unique_across_matrix():
    spec = CampaignSpec(
        name="t",
        specs=(FlowSpec.single_path("wifi"), FlowSpec.mptcp(carrier="att")),
        sizes=(8 * KB, 64 * KB), repetitions=2,
        periods=(TimeOfDay.NIGHT, TimeOfDay.AFTERNOON))
    plan = Campaign(spec).plan()
    seeds = {descriptor.seed for descriptor in plan}
    assert len(seeds) == spec.total_runs()

"""Determinism guard: the hot-path overhaul must not move a single
byte of campaign output.

Runs one small campaign under every combination the overhaul made
switchable -- legacy closure-based link scheduling vs the fast
arg-carrying path, and each CSV-supporting capture level -- and
asserts the rendered CSVs are byte-identical."""

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.report import csv_text
from repro.experiments.runner import Campaign, CampaignSpec
from repro.experiments.scenarios import (
    download_time_rows,
    traffic_share_rows,
)
from repro.netsim.link import Link
from repro.wireless.profiles import TimeOfDay

KB = 1024


def _campaign_csvs(fast: bool, level: str, trace: str = "off",
                   trace_dir=None):
    """Run the guard campaign; return its figure CSVs as bytes."""
    original = Link.use_fast_scheduling
    Link.use_fast_scheduling = fast
    try:
        spec = CampaignSpec(
            name="guard",
            specs=(FlowSpec.single_path("wifi"),
                   FlowSpec.mptcp(carrier="att", controller="coupled")),
            sizes=(64 * KB,), repetitions=1,
            periods=(TimeOfDay.NIGHT,), base_seed=7)
        campaign = Campaign(spec, capture_level=level, trace=trace,
                            trace_dir=trace_dir)
        results = campaign.run()
    finally:
        Link.use_fast_scheduling = original
    assert all(result.completed for result in results)
    downloads = csv_text(*download_time_rows(results))
    shares = csv_text(*traffic_share_rows(results))
    return (downloads.encode(), shares.encode())


@pytest.fixture(scope="module")
def reference_csvs():
    """The configuration campaigns actually run with."""
    return _campaign_csvs(fast=True, level="metrics-only")


def test_fast_path_matches_legacy_scheduling(reference_csvs):
    assert _campaign_csvs(fast=False, level="metrics-only") \
        == reference_csvs


@pytest.mark.parametrize("level", ["full", "headers"])
def test_capture_levels_agree_byte_for_byte(reference_csvs, level):
    assert _campaign_csvs(fast=True, level=level) == reference_csvs


def test_legacy_scheduling_with_full_capture(reference_csvs):
    """The fully-legacy configuration (what the pre-overhaul code
    effectively ran) still reproduces today's bytes."""
    assert _campaign_csvs(fast=False, level="full") == reference_csvs


@pytest.mark.parametrize("trace", ["ring", "jsonl"])
def test_tracing_leaves_campaign_bytes_untouched(reference_csvs, trace,
                                                 tmp_path):
    """Protocol-event tracing is passive: running the same campaign
    with the flight recorder or full JSONL streaming enabled must
    leave every figure CSV byte-identical."""
    traced = _campaign_csvs(fast=True, level="metrics-only",
                            trace=trace, trace_dir=str(tmp_path))
    assert traced == reference_csvs
    if trace == "jsonl":
        # The trace actually streamed (one file per campaign cell).
        files = sorted(tmp_path.glob("run-*.jsonl"))
        assert len(files) == 2
        assert all(path.stat().st_size > 0 for path in files)

"""Determinism guard: no optimization may move a single byte of
campaign output.

Runs one small campaign under every combination the perf work made
switchable -- legacy closure-based link scheduling vs the fast
arg-carrying path, each CSV-supporting capture level, and every run
cache / dispatch configuration (cache off, cache cold, cache warm,
chunked submission, LJF vs plan-order dispatch) -- and asserts the
rendered CSVs are byte-identical."""

import pytest

from repro.cache import RunCache
from repro.experiments.config import FlowSpec
from repro.experiments.report import csv_text
from repro.experiments.runner import Campaign, CampaignSpec
from repro.experiments.scenarios import (
    download_time_rows,
    traffic_share_rows,
)
from repro.netsim.link import Link
from repro.wireless.profiles import TimeOfDay

KB = 1024


def _campaign_csvs(fast: bool = True, level: str = "metrics-only",
                   trace: str = "off", trace_dir=None, jobs: int = 1,
                   cache=None, chunk: int = 1, dispatch: str = "ljf"):
    """Run the guard campaign; return its figure CSVs as bytes."""
    original = Link.use_fast_scheduling
    Link.use_fast_scheduling = fast
    try:
        spec = CampaignSpec(
            name="guard",
            specs=(FlowSpec.single_path("wifi"),
                   FlowSpec.mptcp(carrier="att", controller="coupled")),
            sizes=(64 * KB,), repetitions=1,
            periods=(TimeOfDay.NIGHT,), base_seed=7)
        campaign = Campaign(spec, capture_level=level, trace=trace,
                            trace_dir=trace_dir, jobs=jobs,
                            cache=cache, chunk=chunk, dispatch=dispatch)
        results = campaign.run()
    finally:
        Link.use_fast_scheduling = original
    assert all(result.completed for result in results)
    downloads = csv_text(*download_time_rows(results))
    shares = csv_text(*traffic_share_rows(results))
    return (downloads.encode(), shares.encode())


@pytest.fixture(scope="module")
def reference_csvs():
    """The configuration campaigns actually run with."""
    return _campaign_csvs(fast=True, level="metrics-only")


def test_fast_path_matches_legacy_scheduling(reference_csvs):
    assert _campaign_csvs(fast=False, level="metrics-only") \
        == reference_csvs


@pytest.mark.parametrize("level", ["full", "headers"])
def test_capture_levels_agree_byte_for_byte(reference_csvs, level):
    assert _campaign_csvs(fast=True, level=level) == reference_csvs


def test_legacy_scheduling_with_full_capture(reference_csvs):
    """The fully-legacy configuration (what the pre-overhaul code
    effectively ran) still reproduces today's bytes."""
    assert _campaign_csvs(fast=False, level="full") == reference_csvs


def test_cache_cold_warm_and_off_agree_byte_for_byte(reference_csvs,
                                                     tmp_path):
    """The run cache's three states — off (the reference), cold
    (computing and storing) and warm (serving every cell from disk) —
    must all yield the same campaign bytes."""
    root = tmp_path / "cache"
    cold = _campaign_csvs(cache=str(root))
    assert cold == reference_csvs
    warm_cache = RunCache(root)
    warm = _campaign_csvs(cache=warm_cache)
    assert warm_cache.hits == 2, "warm pass must serve every cell"
    warm_cache.close()
    assert warm == reference_csvs


def test_chunked_submission_matches(reference_csvs):
    assert _campaign_csvs(jobs=2, chunk=2) == reference_csvs


@pytest.mark.parametrize("dispatch", ["ljf", "plan"])
def test_dispatch_order_matches(reference_csvs, dispatch):
    assert _campaign_csvs(jobs=2, dispatch=dispatch) == reference_csvs


def test_cached_chunked_ljf_combined(reference_csvs, tmp_path):
    """The full production configuration — cache + chunking + LJF
    under worker processes — against the plain serial reference."""
    root = tmp_path / "cache"
    assert _campaign_csvs(jobs=2, cache=str(root), chunk=2,
                          dispatch="ljf") == reference_csvs
    assert _campaign_csvs(jobs=2, cache=str(root), chunk=2,
                          dispatch="ljf") == reference_csvs


@pytest.mark.parametrize("trace", ["ring", "jsonl"])
def test_tracing_leaves_campaign_bytes_untouched(reference_csvs, trace,
                                                 tmp_path):
    """Protocol-event tracing is passive: running the same campaign
    with the flight recorder or full JSONL streaming enabled must
    leave every figure CSV byte-identical."""
    traced = _campaign_csvs(fast=True, level="metrics-only",
                            trace=trace, trace_dir=str(tmp_path))
    assert traced == reference_csvs
    if trace == "jsonl":
        # The trace actually streamed (one file per campaign cell).
        files = sorted(tmp_path.glob("run-*.jsonl"))
        assert len(files) == 2
        assert all(path.stat().st_size > 0 for path in files)

"""Determinism guard: no optimization may move a single byte of
campaign output.

Runs one small campaign under every combination the perf work made
switchable -- legacy closure-based link scheduling vs the fast
arg-carrying path, each CSV-supporting capture level, and every run
cache / dispatch configuration (cache off, cache cold, cache warm,
chunked submission, LJF vs plan-order dispatch) -- and asserts the
rendered CSVs are byte-identical."""

import hashlib

import pytest

from repro.cache import RunCache
from repro.experiments.config import FlowSpec
from repro.experiments.report import csv_text
from repro.experiments.runner import Campaign, CampaignSpec
from repro.experiments.scenarios import (
    download_time_rows,
    scheduler_regret_rows,
    traffic_share_rows,
)
from repro.netsim.link import Link
from repro.wireless.profiles import TimeOfDay

KB = 1024

#: SHA-256 of the guard campaign's CSVs, captured before the scheduler
#: lab landed.  Any change to these bytes means a pre-existing
#: campaign output moved — exactly what this module exists to forbid.
PINNED_DOWNLOADS = \
    "37c30a33edf3a36807dc6efb4a19bab8fc20089aa30d6f893b4e794ea5810d27"
PINNED_SHARES = \
    "f314d7f725c10b129153f3c93c7e69782c44576bf99a87b8a5c6b0d0141591aa"


def _campaign_csvs(fast: bool = True, level: str = "metrics-only",
                   trace: str = "off", trace_dir=None, jobs: int = 1,
                   cache=None, chunk: int = 1, dispatch: str = "ljf",
                   backend: str = "pool"):
    """Run the guard campaign; return its figure CSVs as bytes."""
    original = Link.use_fast_scheduling
    Link.use_fast_scheduling = fast
    try:
        spec = CampaignSpec(
            name="guard",
            specs=(FlowSpec.single_path("wifi"),
                   FlowSpec.mptcp(carrier="att", controller="coupled")),
            sizes=(64 * KB,), repetitions=1,
            periods=(TimeOfDay.NIGHT,), base_seed=7)
        campaign = Campaign(spec, capture_level=level, trace=trace,
                            trace_dir=trace_dir, jobs=jobs,
                            cache=cache, chunk=chunk, dispatch=dispatch,
                            backend=backend)
        results = campaign.run()
    finally:
        Link.use_fast_scheduling = original
    assert all(result.completed for result in results)
    downloads = csv_text(*download_time_rows(results))
    shares = csv_text(*traffic_share_rows(results))
    return (downloads.encode(), shares.encode())


@pytest.fixture(scope="module")
def reference_csvs():
    """The configuration campaigns actually run with."""
    return _campaign_csvs(fast=True, level="metrics-only")


def test_fast_path_matches_legacy_scheduling(reference_csvs):
    assert _campaign_csvs(fast=False, level="metrics-only") \
        == reference_csvs


@pytest.mark.parametrize("level", ["full", "headers"])
def test_capture_levels_agree_byte_for_byte(reference_csvs, level):
    assert _campaign_csvs(fast=True, level=level) == reference_csvs


def test_legacy_scheduling_with_full_capture(reference_csvs):
    """The fully-legacy configuration (what the pre-overhaul code
    effectively ran) still reproduces today's bytes."""
    assert _campaign_csvs(fast=False, level="full") == reference_csvs


def test_cache_cold_warm_and_off_agree_byte_for_byte(reference_csvs,
                                                     tmp_path):
    """The run cache's three states — off (the reference), cold
    (computing and storing) and warm (serving every cell from disk) —
    must all yield the same campaign bytes."""
    root = tmp_path / "cache"
    cold = _campaign_csvs(cache=str(root))
    assert cold == reference_csvs
    warm_cache = RunCache(root)
    warm = _campaign_csvs(cache=warm_cache)
    assert warm_cache.hits == 2, "warm pass must serve every cell"
    warm_cache.close()
    assert warm == reference_csvs


def test_chunked_submission_matches(reference_csvs):
    assert _campaign_csvs(jobs=2, chunk=2) == reference_csvs


@pytest.mark.parametrize("dispatch", ["ljf", "plan"])
def test_dispatch_order_matches(reference_csvs, dispatch):
    assert _campaign_csvs(jobs=2, dispatch=dispatch) == reference_csvs


def test_cached_chunked_ljf_combined(reference_csvs, tmp_path):
    """The full production configuration — cache + chunking + LJF
    under worker processes — against the plain serial reference."""
    root = tmp_path / "cache"
    assert _campaign_csvs(jobs=2, cache=str(root), chunk=2,
                          dispatch="ljf") == reference_csvs
    assert _campaign_csvs(jobs=2, cache=str(root), chunk=2,
                          dispatch="ljf") == reference_csvs


def test_distributed_backend_matches(reference_csvs):
    """Cells executed by separate `repro worker` processes over the
    TCP coordinator — the distributed backend — must reproduce the
    serial reference byte for byte."""
    assert _campaign_csvs(backend="subprocess", jobs=2) == reference_csvs


def test_distributed_cached_combined(reference_csvs, tmp_path):
    """Distributed cold pass populates the shared store; the warm pass
    restores every cell without spawning a single worker — both must
    match the serial bytes."""
    root = tmp_path / "cache"
    assert _campaign_csvs(backend="subprocess", jobs=2,
                          cache=str(root)) == reference_csvs
    warm_cache = RunCache(root)
    warm = _campaign_csvs(backend="subprocess", jobs=2,
                          cache=warm_cache)
    assert warm_cache.hits == 2, "warm pass must serve every cell"
    warm_cache.close()
    assert warm == reference_csvs


def test_campaign_bytes_pinned_across_prs(reference_csvs):
    """The guard campaign's bytes, pinned against the digests captured
    before the scheduler-lab changes: a refactor of the scheduler or
    allocator internals must not move any pre-existing campaign CSV."""
    downloads, shares = reference_csvs
    assert hashlib.sha256(downloads).hexdigest() == PINNED_DOWNLOADS
    assert hashlib.sha256(shares).hexdigest() == PINNED_SHARES


# ----------------------------------------------------------------------
# The scheduler-lab campaign under the same guard
# ----------------------------------------------------------------------

def _sched_campaign_csv(trace: str = "off", trace_dir=None,
                        jobs: int = 1) -> bytes:
    """Run a small scheduler-lab matrix; return its regret CSV."""
    specs = tuple(
        FlowSpec.mptcp(carrier="att", controller="coupled",
                       scheduler=scheduler, workload=workload)
        for scheduler in ("blest", "qoe")
        for workload in ("bulk", "realtime"))
    spec = CampaignSpec(
        name="guard-sched", specs=specs, sizes=(64 * KB,),
        repetitions=1, periods=(TimeOfDay.NIGHT,), base_seed=7)
    campaign = Campaign(spec, trace=trace, trace_dir=trace_dir,
                        jobs=jobs)
    results = campaign.run()
    assert all(result.completed for result in results)
    return csv_text(*scheduler_regret_rows(results)).encode()


@pytest.fixture(scope="module")
def sched_reference_csv():
    return _sched_campaign_csv()


def test_scheduler_campaign_is_deterministic(sched_reference_csv):
    assert _sched_campaign_csv() == sched_reference_csv


def test_scheduler_campaign_parallel_matches(sched_reference_csv):
    assert _sched_campaign_csv(jobs=2) == sched_reference_csv


def test_scheduler_campaign_tracing_is_passive(sched_reference_csv,
                                               tmp_path):
    """JSONL tracing shares the bus with the QoE metrics tap; streaming
    every event must not move the campaign's bytes."""
    assert _sched_campaign_csv(trace="jsonl",
                               trace_dir=str(tmp_path)) \
        == sched_reference_csv
    files = sorted(tmp_path.glob("run-*.jsonl"))
    assert len(files) == 4
    assert all(path.stat().st_size > 0 for path in files)


@pytest.mark.parametrize("trace", ["ring", "jsonl"])
def test_tracing_leaves_campaign_bytes_untouched(reference_csvs, trace,
                                                 tmp_path):
    """Protocol-event tracing is passive: running the same campaign
    with the flight recorder or full JSONL streaming enabled must
    leave every figure CSV byte-identical."""
    traced = _campaign_csvs(fast=True, level="metrics-only",
                            trace=trace, trace_dir=str(tmp_path))
    assert traced == reference_csvs
    if trace == "jsonl":
        # The trace actually streamed (one file per campaign cell).
        files = sorted(tmp_path.glob("run-*.jsonl"))
        assert len(files) == 2
        assert all(path.stat().st_size > 0 for path in files)


# ----------------------------------------------------------------------
# The many-flow world campaign under the same guard
# ----------------------------------------------------------------------

from repro.experiments.scenarios import world_campaign, \
    world_fairness_rows  # noqa: E402

#: SHA-256 of the world guard campaign's fairness CSV, captured when
#: the shared-world kernel landed.  The fluid solver, arrival
#: processes and residual-capacity coupling all feed these bytes; any
#: drift here means background worlds stopped being reproducible.
PINNED_WORLD_FAIRNESS = \
    "614d4f527921c3d543eb4587d886281431afe7833ec27337b61ac4f288436841"


def _world_campaign_csv(jobs: int = 1, cache=None,
                        dispatch: str = "ljf") -> bytes:
    """Run a small world matrix; return its fairness CSV as bytes."""
    spec = world_campaign(
        repetitions=1, periods=(TimeOfDay.NIGHT,), base_seed=7,
        worlds=("bg-none", "bg-light", "closed-8"), size=256 * KB)
    campaign = Campaign(spec, jobs=jobs, cache=cache, dispatch=dispatch)
    results = campaign.run()
    assert all(result.completed for result in results)
    return csv_text(*world_fairness_rows(results)).encode()


@pytest.fixture(scope="module")
def world_reference_csv():
    return _world_campaign_csv()


def test_world_campaign_bytes_pinned(world_reference_csv):
    assert hashlib.sha256(world_reference_csv).hexdigest() == \
        PINNED_WORLD_FAIRNESS


def test_world_campaign_parallel_matches(world_reference_csv):
    """One world == one process: worker-pool dispatch must reproduce
    the serial bytes even though each worker hosts its own engine."""
    assert _world_campaign_csv(jobs=2) == world_reference_csv
    assert _world_campaign_csv(jobs=2, dispatch="plan") == \
        world_reference_csv


def test_world_campaign_cache_cold_and_warm_match(world_reference_csv,
                                                  tmp_path):
    root = tmp_path / "cache"
    assert _world_campaign_csv(cache=str(root)) == world_reference_csv
    warm_cache = RunCache(root)
    warm = _world_campaign_csv(cache=warm_cache)
    assert warm_cache.hits == 6, "warm pass must serve every cell"
    warm_cache.close()
    assert warm == world_reference_csv


def test_world_cells_do_not_disturb_plain_cells(reference_csvs):
    """Running a worldly campaign in the same process must not move
    the plain guard campaign's bytes (no RNG or engine-state leaks
    between cells)."""
    _world_campaign_csv()
    assert _campaign_csvs(fast=True, level="metrics-only") == \
        reference_csvs


# ----------------------------------------------------------------------
# The SLA report (metrics registry + analytics store) under the guard
# ----------------------------------------------------------------------

from repro.cli import _report_tables  # noqa: E402
from repro.experiments.storage import save_results  # noqa: E402
from repro.obs.analytics import AnalyticsStore  # noqa: E402

#: SHA-256 of the guard SLA report's CSVs, captured when the metrics
#: registry and analytics store landed.  These bytes flow through the
#: metrics instrumentation, the SQLite ingesters and the percentile /
#: survival queries; any drift means `repro report` stopped being
#: reproducible.
PINNED_SLA = \
    "7c188ca15a05e92fb2fe2b4d2b50fecbcb2590c058e16f04b619588afafe6364"
PINNED_SURVIVAL = \
    "3d3e4ccea54fddc899e85366d3c849c90cf391127f0854675df97042b63671d3"

GUARD_OUTAGE = "outage:down=0.3,up=0.8"


def _sla_guard_results(metrics: str = "on"):
    """Run the guard's miniature SLA matrix: one undisturbed SP flow,
    one MP-2 flow crossing a WiFi outage."""
    spec = CampaignSpec(
        name="guard-sla",
        specs=(FlowSpec.single_path("wifi"),
               FlowSpec.mptcp(carrier="att", controller="coupled",
                              failure=GUARD_OUTAGE)),
        sizes=(512 * KB,), repetitions=1,
        periods=(TimeOfDay.NIGHT,), base_seed=7)
    campaign = Campaign(spec, metrics=metrics)
    results = campaign.run()
    assert all(result.completed for result in results)
    return results


@pytest.fixture(scope="module")
def sla_report_csvs(tmp_path_factory):
    directory = tmp_path_factory.mktemp("guard-sla")
    save_results(directory / "guard-results.jsonl", _sla_guard_results())
    with AnalyticsStore() as store:
        store.ingest_directory(str(directory))
        tables = _report_tables(store)
    return {name: csv_text(headers, rows).encode()
            for name, headers, rows in tables}


def test_sla_report_bytes_pinned(sla_report_csvs):
    assert hashlib.sha256(sla_report_csvs["sla"]).hexdigest() == \
        PINNED_SLA
    assert hashlib.sha256(sla_report_csvs["survival"]).hexdigest() == \
        PINNED_SURVIVAL


def test_metrics_registry_is_passive(reference_csvs):
    """The metrics registry observes, never participates: running the
    identical campaign with metrics on and off must yield byte-identical
    figure output — only the attached snapshot differs.  The metered
    campaign must also leave the plain guard campaign's bytes alone."""
    metered = _sla_guard_results(metrics="on")
    plain = _sla_guard_results(metrics="off")
    assert [result.download_time for result in metered] == \
        [result.download_time for result in plain]
    assert csv_text(*download_time_rows(metered)) == \
        csv_text(*download_time_rows(plain))
    assert all(result.obs_metrics for result in metered)
    assert all(result.obs_metrics is None for result in plain)
    assert _campaign_csvs(fast=True, level="metrics-only") == \
        reference_csvs

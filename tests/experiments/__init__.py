"""Test package."""

"""Distributed backend: lease queue, wire protocol, and end-to-end
coordinator/worker campaigns (byte-identity, failover, warm reruns)."""

import socket

import pytest

from repro.cache import RunCache
from repro.experiments import storage
from repro.experiments.config import FlowSpec
from repro.experiments.distributed import (
    LeaseQueue,
    _KILL_AFTER_ENV,
    Coordinator,
    spawn_subprocess_workers,
    _reap,
)
from repro.experiments.parallel import execute_descriptor_ex
from repro.experiments.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    descriptor_from_dict,
    descriptor_to_dict,
    parse_address,
    recv_message,
    result_from_wrapper,
    result_wrapper,
    send_message,
)
from repro.experiments.runner import Campaign, CampaignSpec
from repro.experiments.storage import result_to_dict
from repro.obs.telemetry import RunLog, run_log_failovers
from repro.wireless.profiles import TimeOfDay

KB = 1024


def small_campaign(base_seed=7):
    return CampaignSpec(
        name="dist",
        specs=(FlowSpec.single_path("wifi"), FlowSpec.mptcp(carrier="att")),
        sizes=(8 * KB, 32 * KB), repetitions=1,
        periods=(TimeOfDay.NIGHT,), base_seed=base_seed)


def full_dicts(results):
    return [result_to_dict(result, max_samples=None) for result in results]


# ----------------------------------------------------------------------
# LeaseQueue
# ----------------------------------------------------------------------

def test_lease_queue_grants_and_releases():
    queue = LeaseQueue([[0, 1], [2]], lease_timeout=60.0)
    lease = queue.lease("w1", now=0.0, skip=lambda p: False)
    assert lease.positions == [0, 1]
    assert queue.outstanding == 1
    assert queue.release(lease.lease_id) is lease
    assert queue.lease("w2", now=0.0, skip=lambda p: False).positions == [2]


def test_lease_queue_skips_filled_positions():
    queue = LeaseQueue([[0, 1], [2, 3]], lease_timeout=60.0)
    lease = queue.lease("w1", now=0.0, skip=lambda p: p in (0, 1, 2))
    # The fully-filled first chunk is discarded outright; the second
    # loses its filled half.
    assert lease.positions == [3]
    queue.release(lease.lease_id)
    assert queue.drained


def test_lease_queue_expiry_refronts_the_chunk():
    queue = LeaseQueue([[0], [1]], lease_timeout=10.0)
    first = queue.lease("w1", now=0.0, skip=lambda p: False)
    assert queue.expire(now=5.0) == []          # still live
    overdue = queue.expire(now=10.0)
    assert [lease.lease_id for lease in overdue] == [first.lease_id]
    assert queue.expired == 1
    # Refronted: the expired chunk is re-granted before chunk [1].
    assert queue.lease("w2", now=10.0,
                       skip=lambda p: False).positions == [0]


def test_lease_queue_renew_extends_and_rejects_expired():
    queue = LeaseQueue([[0]], lease_timeout=10.0)
    lease = queue.lease("w1", now=0.0, skip=lambda p: False)
    assert queue.renew(lease.lease_id, now=8.0)
    assert queue.expire(now=12.0) == []         # renewal pushed deadline
    queue.expire(now=18.0)
    assert not queue.renew(lease.lease_id, now=18.0)


def test_lease_queue_abandon_drops_only_that_worker():
    queue = LeaseQueue([[0], [1]], lease_timeout=60.0)
    mine = queue.lease("w1", now=0.0, skip=lambda p: False)
    other = queue.lease("w2", now=0.0, skip=lambda p: False)
    dropped = queue.abandon("w1")
    assert [lease.lease_id for lease in dropped] == [mine.lease_id]
    assert queue.outstanding == 1
    assert queue.release(other.lease_id) is other


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------

def test_framing_round_trip_and_clean_eof():
    a, b = socket.socketpair()
    try:
        payload = {"type": "work", "cells": ["x" * 5000], "n": 42}
        send_message(a, payload)
        assert recv_message(b) == payload
        a.close()
        assert recv_message(b) is None          # clean EOF, not an error
    finally:
        b.close()


def test_framing_rejects_truncated_header():
    a, b = socket.socketpair()
    try:
        a.sendall(b"\x00\x00")                  # half a length prefix
        a.close()
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        b.close()


def test_parse_address():
    assert parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
    with pytest.raises(ValueError):
        parse_address("no-port-here")


def test_descriptor_codec_round_trip():
    plan = Campaign(small_campaign()).plan()
    for descriptor in plan:
        data = descriptor_to_dict(descriptor)
        clone = descriptor_from_dict(data)
        assert clone.key == descriptor.key
        assert clone.spec == descriptor.spec
        assert clone.size == descriptor.size
        assert clone.seed == descriptor.seed
        assert clone.period == descriptor.period
        assert clone.index == descriptor.index


def test_result_wrapper_is_full_fidelity():
    descriptor = Campaign(small_campaign()).plan()[0]
    result, _report, _wall = execute_descriptor_ex(descriptor)
    wrapper = result_wrapper(descriptor.key, result)
    assert wrapper["format_version"] == storage.FORMAT_VERSION
    clone = result_from_wrapper(wrapper)
    assert result_to_dict(clone, max_samples=None) == \
        result_to_dict(result, max_samples=None)
    bad = dict(wrapper, format_version=storage.FORMAT_VERSION + 1)
    with pytest.raises(ProtocolError):
        result_from_wrapper(bad)


def test_coordinator_rejects_version_mismatch():
    plan = Campaign(small_campaign()).plan()
    coordinator = Coordinator(plan, [], total=0,
                              is_filled=lambda p: True,
                              finish=lambda p, r: None)
    try:
        coordinator.start()
        with socket.create_connection(coordinator.address,
                                      timeout=10.0) as conn:
            send_message(conn, {"type": "hello", "worker": "old",
                                "protocol": PROTOCOL_VERSION + 1,
                                "format_version": storage.FORMAT_VERSION})
            reply = recv_message(conn)
        assert reply["type"] == "error"
        assert "version mismatch" in reply["error"]
    finally:
        coordinator.close()


# ----------------------------------------------------------------------
# End-to-end campaigns
# ----------------------------------------------------------------------

def test_subprocess_backend_equals_serial():
    spec = small_campaign()
    serial = Campaign(spec, jobs=1).run()
    distributed = Campaign(spec, backend="subprocess", jobs=2,
                           chunk=1).run()
    assert full_dicts(distributed) == full_dicts(serial)


def test_distributed_progress_reports_every_run():
    calls = []
    spec = small_campaign()
    Campaign(spec, progress=lambda i, n, r: calls.append((i, n)),
             backend="subprocess", jobs=2).run()
    assert sorted(index for index, _ in calls) == [1, 2, 3, 4]
    assert all(total == 4 for _, total in calls)


def test_warm_distributed_rerun_is_all_cache_hits(tmp_path):
    spec = small_campaign()
    serial = Campaign(spec, jobs=1).run()
    with RunCache(tmp_path / "cache") as cache:
        cold = Campaign(spec, backend="subprocess", jobs=2,
                        cache=cache).run()
        assert cache.hits == 0
        warm = Campaign(spec, backend="subprocess", jobs=2,
                        cache=cache).run()
        # Every cell restored from the store: no coordinator, no
        # workers, no sockets -- and still byte-identical.
        assert cache.hits == spec.total_runs()
    assert full_dicts(cold) == full_dicts(serial)
    assert full_dicts(warm) == full_dicts(serial)


def test_worker_death_fails_over_and_results_are_identical(tmp_path):
    """SIGKILL a worker mid-chunk: its lease expires, the chunk is
    refronted to the surviving worker, the run log records the
    failover, and the results are still byte-identical to serial."""
    spec = small_campaign()
    serial = Campaign(spec, jobs=1).run()
    run_log = tmp_path / "run_log.jsonl"
    port = _free_port()

    campaign = Campaign(spec, backend="tcp", jobs=1, chunk=1,
                        bind=f"127.0.0.1:{port}", lease_timeout=1.5,
                        run_log=str(run_log))
    import threading
    box = {}

    def drive():
        try:
            box["results"] = campaign.run()
        except BaseException as error:  # surfaced after join
            box["error"] = error

    thread = threading.Thread(target=drive, daemon=True)
    thread.start()

    address = ("127.0.0.1", port)
    # The victim arms the self-SIGKILL hook: it dies after executing
    # its first cell, before publishing anything.
    victim = spawn_subprocess_workers(
        address, count=1, extra_env={_KILL_AFTER_ENV: "1"})
    victim[0].wait(timeout=120)
    assert victim[0].returncode == -9           # really SIGKILLed

    survivor = spawn_subprocess_workers(address, count=1)
    try:
        thread.join(timeout=120)
        assert not thread.is_alive(), "campaign did not drain"
    finally:
        _reap(survivor)
    assert "error" not in box, box.get("error")
    assert full_dicts(box["results"]) == full_dicts(serial)

    failovers = run_log_failovers(run_log)
    assert failovers, "no lease_expired record after worker death"
    refronted = {cell for record in failovers
                 for cell in record["cells"]}
    finished = {record["key"] for record in RunLog.read(run_log)
                if record["event"] == "finish"}
    # Every cell the dead worker held was re-run (and delivered) by
    # the survivor.
    assert refronted <= finished
    assert len(finished) == spec.total_runs()


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_failed_cell_aborts_the_campaign():
    """A cell that raises on the worker surfaces as a campaign error,
    not a hang or a silent hole in the results."""
    spec = small_campaign()
    plan = Campaign(spec).plan()

    from repro.experiments.distributed import DistributedExecutionError
    coordinator = Coordinator(plan, [[0]], total=len(plan),
                              is_filled=lambda p: False,
                              finish=lambda p, r: None)
    try:
        coordinator.start()
        with socket.create_connection(coordinator.address,
                                      timeout=10.0) as conn:
            send_message(conn, {"type": "hello", "worker": "t",
                                "jobs": 1,
                                "protocol": PROTOCOL_VERSION,
                                "format_version": storage.FORMAT_VERSION})
            assert recv_message(conn)["type"] == "welcome"
            send_message(conn, {"type": "lease"})
            grant = recv_message(conn)
            assert grant["type"] == "work"
            send_message(conn, {"type": "failed",
                                "lease": grant["lease"],
                                "position": grant["positions"][0],
                                "error": "ValueError('boom')"})
            assert recv_message(conn)["type"] == "abort"
        with pytest.raises(DistributedExecutionError, match="boom"):
            coordinator.wait(timeout=30.0)
    finally:
        coordinator.close()

"""Run-cache maintenance: object export/import/sync and garbage
collection (the machinery under ``repro cache gc`` and the worker
publish path)."""

import json
import os
import time

import pytest

from repro.cache import RunCache
from repro.experiments.config import FlowSpec
from repro.experiments.runner import Campaign, CampaignSpec
from repro.experiments.storage import result_to_dict
from repro.wireless.profiles import TimeOfDay

KB = 1024


@pytest.fixture(scope="module")
def baseline():
    spec = CampaignSpec(
        name="gc",
        specs=(FlowSpec.single_path("wifi"), FlowSpec.mptcp(carrier="att")),
        sizes=(8 * KB,), repetitions=1,
        periods=(TimeOfDay.NIGHT,), base_seed=11)
    return Campaign(spec).run()


def full_dicts(results):
    return [result_to_dict(result, max_samples=None) for result in results]


# ----------------------------------------------------------------------
# Export / import / sync
# ----------------------------------------------------------------------

def test_export_import_round_trip(tmp_path, baseline):
    with RunCache(tmp_path / "a") as source, \
            RunCache(tmp_path / "b") as target:
        result = baseline[0]
        source.put(result)
        key = source.key_of(result)
        wrapper = source.export_object(key)
        assert wrapper["key"] == key
        assert target.import_object(wrapper)
        assert not target.import_object(wrapper), "imports are idempotent"
        restored = target.get(key)
    assert full_dicts([restored]) == full_dicts([result])


def test_export_missing_key_is_none(tmp_path):
    with RunCache(tmp_path / "a") as cache:
        assert cache.export_object("no|such|key|cell") is None


def test_import_rejects_foreign_format_version(tmp_path, baseline):
    with RunCache(tmp_path / "a") as source, \
            RunCache(tmp_path / "b") as target:
        source.put(baseline[0])
        wrapper = source.export_object(source.key_of(baseline[0]))
        wrapper["format_version"] += 1
        with pytest.raises(ValueError, match="format version"):
            target.import_object(wrapper)


def test_missing_names_only_absent_digests(tmp_path, baseline):
    with RunCache(tmp_path / "a") as cache:
        cache.put(baseline[0])
        held = cache.digest_of(cache.key_of(baseline[0]))
        absent = cache.digest_of("other|1|2|day")
        assert cache.missing([held, absent]) == [absent]


def test_sync_into_copies_only_whats_missing(tmp_path, baseline):
    with RunCache(tmp_path / "a") as source, \
            RunCache(tmp_path / "b") as target:
        for result in baseline:
            source.put(result)
        target.put(baseline[0])             # already holds one
        assert source.sync_into(target) == len(baseline) - 1
        assert source.sync_into(target) == 0, "second sync is a no-op"
        for result in baseline:
            restored = target.get(target.key_of(result))
            assert full_dicts([restored]) == full_dicts([result])


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------

def _orphan_tmp(cache):
    """Simulate a worker SIGKILLed between mkstemp and os.replace."""
    shard = cache.root / "objects" / "ab"
    shard.mkdir(parents=True, exist_ok=True)
    path = shard / ".abandoned.json.1234.tmp"
    path.write_text("{partial")
    return path


def _unreferenced_object(cache):
    """Simulate a crash between the object replace and the index
    append: a valid object file whose digest the index never saw."""
    digest = "ff" * 32
    shard = cache.root / "objects" / digest[:2]
    shard.mkdir(parents=True, exist_ok=True)
    path = shard / f"{digest}.json"
    path.write_text(json.dumps({"key": "ghost", "format_version": 0,
                                "result": {}}))
    return path


def test_gc_removes_tmp_and_unreferenced_heals_index(tmp_path, baseline):
    with RunCache(tmp_path / "cache") as cache:
        for result in baseline:
            cache.put(result)
        tmp = _orphan_tmp(cache)
        ghost = _unreferenced_object(cache)
        stats = cache.gc()
        assert stats["tmp_files"] == 1
        assert stats["unreferenced_objects"] == 1
        assert stats["entries_kept"] == len(baseline)
        assert stats["bytes_reclaimed"] > 0
        assert not tmp.exists()
        assert not ghost.exists()
        # Self-heal: live entries still hit after collection.
        restored = cache.get(cache.key_of(baseline[0]))
        assert full_dicts([restored]) == full_dicts([baseline[0]])


def test_gc_dry_run_touches_nothing(tmp_path, baseline):
    with RunCache(tmp_path / "cache") as cache:
        cache.put(baseline[0])
        tmp = _orphan_tmp(cache)
        ghost = _unreferenced_object(cache)
        stats = cache.gc(dry_run=True)
        assert stats["dry_run"]
        assert stats["tmp_files"] == 1
        assert stats["unreferenced_objects"] == 1
        assert tmp.exists() and ghost.exists(), "dry run must not delete"


def test_gc_drops_dangling_index_lines(tmp_path, baseline):
    with RunCache(tmp_path / "cache") as cache:
        for result in baseline:
            cache.put(result)
        victim = cache.key_of(baseline[0])
        cache._object_path(cache.digest_of(victim)).unlink()
        stats = cache.gc()
        assert stats["dangling_index_lines"] == 1
        assert stats["entries_kept"] == len(baseline) - 1
        # The healed index no longer claims the lost entry...
        assert cache.get(victim) is None
        # ...and the store still accepts it back afterwards.
        assert cache.put(baseline[0])
        assert cache.get(victim) is not None


def test_gc_older_than_prunes_stale_entries(tmp_path, baseline):
    with RunCache(tmp_path / "cache") as cache:
        for result in baseline:
            cache.put(result)
        old = cache._object_path(cache.digest_of(
            cache.key_of(baseline[0])))
        stale = time.time() - 10 * 86400
        os.utime(old, (stale, stale))
        stats = cache.gc(older_than_s=7 * 86400)
        assert stats["stale_entries"] == 1
        assert stats["entries_kept"] == len(baseline) - 1
        assert cache.get(cache.key_of(baseline[0])) is None
        assert cache.get(cache.key_of(baseline[1])) is not None


def test_gc_survives_reopen(tmp_path, baseline):
    """The index rewrite must leave a store that reopens cleanly with
    exactly the kept entries."""
    with RunCache(tmp_path / "cache") as cache:
        for result in baseline:
            cache.put(result)
        _orphan_tmp(cache)
        cache.gc()
    with RunCache(tmp_path / "cache") as cache:
        assert len(cache) == len(baseline)
        restored = cache.get(cache.key_of(baseline[1]))
        assert full_dicts([restored]) == full_dicts([baseline[1]])

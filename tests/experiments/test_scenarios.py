"""Tests for the canned campaigns and row extractors."""

from repro.experiments.config import FlowSpec
from repro.experiments.runner import RunResult
from repro.experiments.scenarios import (
    KB,
    MB,
    backlog_campaign,
    baseline_campaign,
    coffee_shop_campaign,
    download_time_rows,
    large_flows_campaign,
    latency_campaign,
    mptcp_rtt_ofo_rows,
    ofo_ccdf_rows,
    path_characteristics_rows,
    rtt_ccdf_rows,
    simultaneous_syn_campaign,
    small_flows_campaign,
    syn_comparison_rows,
    traffic_share_rows,
)
from repro.trace.metrics import ConnectionMetrics
from repro.trace.analyzer import FlowAnalysis
from repro.wireless.profiles import TimeOfDay


def test_baseline_campaign_matches_figure2_matrix():
    spec = baseline_campaign()
    labels = [s.label for s in spec.specs]
    assert labels.count("SP-WiFi") == 1
    assert "SP-ATT" in labels and "SP-VZW" in labels and "SP-Sprint" in labels
    assert sum(1 for s in spec.specs if s.mode == "mp") == 3
    assert spec.sizes == (64 * KB, 512 * KB, 2 * MB, 16 * MB)


def test_small_flows_campaign_matches_figure4_matrix():
    spec = small_flows_campaign()
    assert spec.sizes == (8 * KB, 64 * KB, 512 * KB, 4 * MB)
    mp = [s for s in spec.specs if s.mode == "mp"]
    assert {(s.paths, s.controller) for s in mp} == {
        (p, c) for p in (2, 4) for c in ("coupled", "olia", "reno")}
    assert all(s.carrier == "att" for s in mp)


def test_coffee_shop_campaign_uses_public_wifi_and_no_olia():
    spec = coffee_shop_campaign()
    assert all(s.wifi == "public" for s in spec.specs)
    assert not any(s.controller == "olia" for s in spec.specs)


def test_simultaneous_syn_campaign_pairs_modes():
    spec = simultaneous_syn_campaign()
    assert {s.simultaneous_syn for s in spec.specs} == {True, False}
    assert spec.sizes == (64 * KB, 512 * KB, 2 * MB)


def test_large_flows_campaign_sizes():
    spec = large_flows_campaign()
    assert spec.sizes == (4 * MB, 8 * MB, 16 * MB, 32 * MB)


def test_backlog_campaign_default_scaled_down():
    spec = backlog_campaign()
    assert spec.sizes == (32 * MB,)
    full = backlog_campaign(size=512 * MB)
    assert full.sizes == (512 * MB,)
    assert {(s.paths, s.controller) for s in spec.specs} == {
        (2, "coupled"), (2, "reno"), (4, "coupled"), (4, "reno")}


def test_latency_campaign_covers_all_carriers():
    spec = latency_campaign()
    assert {s.carrier for s in spec.specs} == {"att", "verizon", "sprint"}


def make_result(spec, size, download_time=1.0, cell_fraction=0.5,
                per_path=None, ofo=(), completed=True):
    metrics = ConnectionMetrics(
        download_time=download_time,
        cellular_fraction=cell_fraction,
        per_path=per_path or {},
        ofo_delays=list(ofo))
    return RunResult(spec=spec, size=size, seed=0,
                     period=TimeOfDay.NIGHT, completed=completed,
                     download_time=download_time if completed else None,
                     metrics=metrics)


def test_download_time_rows_summarize_five_numbers():
    spec = FlowSpec.single_path("wifi")
    results = [make_result(spec, 64 * KB, download_time=t)
               for t in (1.0, 2.0, 3.0)]
    headers, rows = download_time_rows(results)
    assert headers[:2] == ["size", "config"]
    assert rows == [["64 KB", "SP-WiFi", "3",
                     "1.000", "1.500", "2.000", "2.500", "3.000"]]


def test_traffic_share_rows_skip_single_path():
    sp = FlowSpec.single_path("wifi")
    mp = FlowSpec.mptcp(carrier="att")
    results = [make_result(sp, 64 * KB),
               make_result(mp, 64 * KB, cell_fraction=0.25),
               make_result(mp, 64 * KB, cell_fraction=0.75)]
    headers, rows = traffic_share_rows(results)
    assert len(rows) == 1
    assert rows[0][0] == "64 KB"
    assert rows[0][3].startswith("0.500")


def test_path_characteristics_rows_use_sp_runs():
    spec = FlowSpec.single_path("cell", carrier="att")
    analysis = FlowAnalysis(local=("server.eth0", 8080),
                            remote=("client.att", 4000))
    analysis.data_packets_sent = 100
    analysis.retransmitted_packets = 2
    analysis.rtt_samples = [0.1, 0.12]
    results = [make_result(spec, 64 * KB, per_path={"att": analysis})]
    headers, rows = path_characteristics_rows(results)
    assert rows[0][1] == "ATT"
    assert rows[0][3].startswith("2.00")   # 2% loss
    assert rows[0][4].startswith("110.0")  # 110 ms mean RTT


def test_rtt_ccdf_rows_pool_samples_by_carrier_and_size():
    spec = FlowSpec.mptcp(carrier="att")
    wifi = FlowAnalysis(local=("server.eth0", 1), remote=("client.wifi", 2))
    wifi.rtt_samples = [0.02, 0.03]
    cell = FlowAnalysis(local=("server.eth0", 1), remote=("client.att", 3))
    cell.rtt_samples = [0.06, 0.3]
    results = [make_result(spec, 4 * MB,
                           per_path={"wifi": wifi, "att": cell})]
    headers, rows = rtt_ccdf_rows(results)
    keys = {(row[0], row[1]) for row in rows}
    assert keys == {("att", "wifi"), ("att", "att")}


def test_ofo_ccdf_rows_report_in_order_percentage():
    spec = FlowSpec.mptcp(carrier="sprint")
    results = [make_result(spec, 4 * MB, ofo=[0.0, 0.0, 0.2, 0.4])]
    headers, rows = ofo_ccdf_rows(results)
    assert rows[0][0] == "sprint"
    assert rows[0][3] == "50.0"


def test_mptcp_rtt_ofo_rows_shape():
    spec = FlowSpec.mptcp(carrier="att")
    wifi = FlowAnalysis(local=("s", 1), remote=("client.wifi", 2))
    wifi.rtt_samples = [0.03]
    cell = FlowAnalysis(local=("s", 1), remote=("client.att", 3))
    cell.rtt_samples = [0.1]
    results = [make_result(spec, 4 * MB, ofo=[0.01],
                           per_path={"wifi": wifi, "att": cell})]
    headers, rows = mptcp_rtt_ofo_rows(results)
    assert rows[0][1] == "ATT"
    assert rows[0][2].startswith("100.0")
    assert rows[0][4].startswith("10.0")


def test_syn_comparison_rows_compute_reduction():
    delayed = FlowSpec.mptcp(carrier="att")
    simultaneous = delayed.with_(simultaneous_syn=True)
    results = [make_result(delayed, 512 * KB, download_time=1.0),
               make_result(simultaneous, 512 * KB, download_time=0.86)]
    headers, rows = syn_comparison_rows(results)
    reduction = [row for row in rows if row[1] == "reduction"]
    assert reduction and reduction[0][3] == "14.0%"


def test_incomplete_runs_are_excluded():
    spec = FlowSpec.mptcp(carrier="att")
    results = [make_result(spec, 64 * KB, completed=False)]
    _, rows = download_time_rows(results)
    assert rows == []
    _, share_rows = traffic_share_rows(results)
    assert share_rows == []

"""Tests for the sensitivity-sweep harness."""

import dataclasses

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.sensitivity import (
    SweepPoint,
    sweep_profile_field,
    sweep_spec_field,
)
from repro.wireless.profiles import HOME_WIFI

KB = 1024


def test_sweep_point_statistics():
    point = SweepPoint("x", [1.0, 3.0, 2.0])
    assert point.mean == pytest.approx(2.0)
    assert point.median == pytest.approx(2.0)


def test_sweep_spec_field_varies_the_field():
    points = sweep_spec_field(
        FlowSpec.mptcp(carrier="att"), "ssthresh",
        values=(16 * KB, 64 * KB), size=64 * KB, seeds=(91,))
    assert [point.value for point in points] == [16 * KB, 64 * KB]
    assert all(point.samples for point in points)


def test_sweep_profile_field_wifi_loss_monotone():
    """More WiFi loss, slower SP-WiFi downloads (medians, two seeds)."""
    points = sweep_profile_field(
        FlowSpec.single_path("wifi"), HOME_WIFI, "wifi", "down_loss",
        values=(0.0, 0.08), size=512 * KB, seeds=(91, 92))
    clean, lossy = points
    assert clean.median < lossy.median


def test_sweep_profile_field_validates_which():
    with pytest.raises(ValueError):
        sweep_profile_field(FlowSpec.mptcp(), HOME_WIFI, "uplink",
                            "down_loss", values=(0.0,), size=8 * KB,
                            seeds=(1,))


def test_profile_override_reaches_testbed():
    """A rate override must change the measured outcome."""
    from repro.experiments.runner import Measurement

    slow_wifi = dataclasses.replace(HOME_WIFI, down_rate=1e6)
    spec = FlowSpec.single_path("wifi")
    normal = Measurement(spec, 512 * KB, seed=93).run()
    slowed = Measurement(spec, 512 * KB, seed=93,
                         wifi_profile=slow_wifi).run()
    assert slowed.download_time > normal.download_time * 1.5

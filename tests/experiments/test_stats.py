"""Tests for the statistics helpers, cross-checked against numpy."""

import math

import numpy
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.stats import (
    ccdf,
    ccdf_at_fractions,
    ccdf_fraction_above,
    five_number,
    mean_stderr,
    quantile,
)

floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


def test_quantile_matches_numpy():
    samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    for q in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
        assert quantile(samples, q) == pytest.approx(
            float(numpy.quantile(samples, q)))


def test_quantile_single_sample():
    assert quantile([7.0], 0.5) == 7.0


def test_quantile_validates_inputs():
    with pytest.raises(ValueError):
        quantile([], 0.5)
    with pytest.raises(ValueError):
        quantile([1.0], 1.5)


def test_five_number_summary():
    samples = list(range(1, 101))
    summary = five_number([float(v) for v in samples])
    assert summary.minimum == 1.0
    assert summary.maximum == 100.0
    assert summary.median == pytest.approx(50.5)
    assert summary.q1 == pytest.approx(numpy.quantile(samples, 0.25))
    assert summary.q3 == pytest.approx(numpy.quantile(samples, 0.75))
    assert summary.count == 100


def test_mean_stderr_matches_numpy():
    samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    mean, stderr = mean_stderr(samples)
    assert mean == pytest.approx(float(numpy.mean(samples)))
    assert stderr == pytest.approx(
        float(numpy.std(samples, ddof=1)) / math.sqrt(len(samples)))


def test_mean_stderr_single_sample():
    assert mean_stderr([3.0]) == (3.0, 0.0)


def test_mean_stderr_empty_rejected():
    with pytest.raises(ValueError):
        mean_stderr([])


def test_ccdf_points():
    points = ccdf([1.0, 1.0, 2.0, 3.0])
    assert points == [(1.0, 0.5), (2.0, 0.25), (3.0, 0.0)]


def test_ccdf_empty():
    assert ccdf([]) == []


def test_ccdf_fraction_above():
    samples = [0.1, 0.2, 0.3, 0.4]
    assert ccdf_fraction_above(samples, 0.25) == 0.5
    assert ccdf_fraction_above(samples, 1.0) == 0.0
    assert ccdf_fraction_above([], 0.5) == 0.0


def test_ccdf_at_fractions_inverse_view():
    samples = [float(v) for v in range(1, 101)]
    pairs = ccdf_at_fractions(samples, [0.5, 0.1])
    assert pairs[0][1] == pytest.approx(quantile(samples, 0.5))
    assert pairs[1][1] == pytest.approx(quantile(samples, 0.9))


def test_ccdf_at_fractions_empty_gives_nan():
    pairs = ccdf_at_fractions([], [0.5])
    assert math.isnan(pairs[0][1])


def test_jain_fairness_values():
    from repro.experiments.stats import jain_fairness
    assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    assert jain_fairness([10.0, 0.0]) == pytest.approx(0.5)
    assert jain_fairness([1.0]) == pytest.approx(1.0)
    assert jain_fairness([0.0, 0.0]) == 1.0
    # Mild imbalance stays near 1.
    assert 0.9 < jain_fairness([4.0, 6.0]) < 1.0


def test_jain_fairness_validates():
    from repro.experiments.stats import jain_fairness
    with pytest.raises(ValueError):
        jain_fairness([])
    with pytest.raises(ValueError):
        jain_fairness([-1.0, 2.0])


def test_confidence_interval_contains_mean():
    from repro.experiments.stats import confidence_interval_95
    samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    low, high = confidence_interval_95(samples)
    mean, _ = mean_stderr(samples)
    assert low < mean < high
    # Known value: mean 5.0, sd 2.138, stderr 0.7559, t(7)=2.365.
    assert low == pytest.approx(5.0 - 2.365 * 0.7559, rel=1e-3)


def test_confidence_interval_narrows_with_samples():
    from repro.experiments.stats import confidence_interval_95
    narrow = confidence_interval_95([1.0, 2.0] * 15)
    wide = confidence_interval_95([1.0, 2.0])
    assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])


def test_confidence_interval_needs_two_samples():
    from repro.experiments.stats import confidence_interval_95
    with pytest.raises(ValueError):
        confidence_interval_95([1.0])


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_property_jain_bounds(allocations):
    from repro.experiments.stats import jain_fairness
    value = jain_fairness(allocations)
    assert 1.0 / len(allocations) - 1e-9 <= value <= 1.0 + 1e-9


@settings(max_examples=100, deadline=None)
@given(st.lists(floats, min_size=1, max_size=100))
def test_property_five_number_is_ordered(samples):
    summary = five_number(samples)
    assert (summary.minimum <= summary.q1 <= summary.median
            <= summary.q3 <= summary.maximum)


@settings(max_examples=100, deadline=None)
@given(st.lists(floats, min_size=2, max_size=100))
def test_property_mean_within_range(samples):
    mean, stderr = mean_stderr(samples)
    assert min(samples) - 1e-9 <= mean <= max(samples) + 1e-9
    assert stderr >= 0.0


@settings(max_examples=100, deadline=None)
@given(st.lists(floats, min_size=1, max_size=60))
def test_property_ccdf_is_monotone_decreasing(samples):
    points = ccdf(samples)
    fractions = [fraction for _, fraction in points]
    assert fractions == sorted(fractions, reverse=True)
    assert points[-1][1] == 0.0
    values = [value for value, _ in points]
    assert values == sorted(values)


@settings(max_examples=60, deadline=None)
@given(st.lists(floats, min_size=1, max_size=60),
       st.floats(min_value=0.0, max_value=1.0))
def test_property_quantile_brackets_samples(samples, q):
    value = quantile(samples, q)
    assert min(samples) - 1e-9 <= value <= max(samples) + 1e-9

"""Tests for the upload (client-to-server) workload."""

import pytest

from repro.app.http import HTTP_PORT
from repro.app.upload import UploadClient, UploadRecord, \
    UploadServerSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.coupling import RenoController
from repro.tcp.endpoint import TcpConfig, TcpEndpoint, TcpListener
from repro.testbed import Testbed, TestbedConfig

KB, MB = 1024, 1024 * 1024


def upload_over_mptcp(size, seed=31, carrier="att"):
    testbed = Testbed(TestbedConfig(seed=seed, carrier=carrier))
    config = MptcpConfig()
    sessions = []

    def on_connection(server_conn):
        sessions.append(UploadServerSession(server_conn, size))

    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=on_connection)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = UploadClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    testbed.run(until=300.0)
    return client.record, sessions, connection


def test_upload_completes_and_acknowledges():
    record, sessions, _ = upload_over_mptcp(1 * MB)
    assert record.complete
    assert record.upload_time > 0
    assert sessions[0].received >= 1 * MB


def test_upload_record_guards_incomplete():
    record = UploadRecord(size=10, started_at=0.0)
    with pytest.raises(RuntimeError):
        _ = record.upload_time


def test_upload_uses_both_uplinks():
    """Bulk upstream data spreads over WiFi and cellular uplinks."""
    record, sessions, connection = upload_over_mptcp(4 * MB)
    assert record.complete
    server_split = sessions[0].transport.receive_buffer \
        .metrics.bytes_by_path
    assert server_split.get("wifi", 0) > 0
    assert server_split.get("att", 0) > 0
    assert sum(server_split.values()) >= 4 * MB


def test_upload_slower_than_download_of_same_size():
    """Uplinks are a fraction of downlinks on every access network."""
    from repro.experiments.config import FlowSpec
    from repro.experiments.runner import Measurement

    size = 2 * MB
    download = Measurement(FlowSpec.mptcp(carrier="att"), size,
                           seed=31).run()
    upload_record, _, _ = upload_over_mptcp(size, seed=31)
    assert upload_record.upload_time > download.download_time


def test_upload_over_plain_tcp():
    testbed = Testbed(TestbedConfig(seed=32))
    config = TcpConfig()
    sessions = []

    def accept(packet, host):
        segment = packet.segment
        endpoint = TcpEndpoint(testbed.sim, host, packet.dst,
                               segment.dst_port, packet.src,
                               segment.src_port, config,
                               RenoController())
        sessions.append(UploadServerSession(endpoint, 512 * KB))
        endpoint.accept(packet)

    testbed.server.bind_listener(HTTP_PORT, TcpListener(accept))
    endpoint = TcpEndpoint(testbed.sim, testbed.client, "client.wifi",
                           testbed.client.ephemeral_port(),
                           testbed.server_addrs[0], HTTP_PORT, config,
                           RenoController())
    client = UploadClient(testbed.sim, endpoint, 512 * KB)
    client.start()
    endpoint.connect()
    testbed.run(until=60.0)
    assert client.record.complete
    assert sessions[0].received >= 512 * KB

"""Tests for the Web page-load workload."""

import random

import pytest

from repro.app.http import HTTP_PORT, HttpServerSession
from repro.app.web import (
    HEAVY_PAGE,
    TYPICAL_PAGE,
    PageLoader,
    PageLoadRecord,
)
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.testbed import Testbed, TestbedConfig

KB = 1024


def test_page_draws_are_heavy_tailed_but_bounded():
    rng = random.Random(5)
    sizes_seen = []
    for _ in range(200):
        page = TYPICAL_PAGE.draw_page(rng)
        assert len(page) >= 2  # HTML + at least one object
        assert all(size >= KB for size in page)
        assert all(size <= TYPICAL_PAGE.object_cap for size in page[1:])
        sizes_seen.extend(page[1:])
    sizes_seen.sort()
    median = sizes_seen[len(sizes_seen) // 2]
    assert 4 * KB < median < 64 * KB
    assert max(sizes_seen) > 20 * median  # the heavy tail exists


def test_heavy_profile_is_heavier():
    rng_a, rng_b = random.Random(1), random.Random(1)
    typical = sum(sum(TYPICAL_PAGE.draw_page(rng_a)) for _ in range(100))
    heavy = sum(sum(HEAVY_PAGE.draw_page(rng_b)) for _ in range(100))
    assert heavy > typical


def test_record_accessors_guard_incomplete():
    record = PageLoadRecord(sizes=[100], started_at=0.0)
    with pytest.raises(RuntimeError):
        _ = record.page_load_time
    with pytest.raises(RuntimeError):
        _ = record.time_to_first_byte


def test_empty_page_rejected():
    testbed = Testbed(TestbedConfig(seed=1))
    with pytest.raises(ValueError):
        PageLoader(testbed.sim, object(), [])


def load_page(sizes, seed=61, carrier="att"):
    testbed = Testbed(TestbedConfig(seed=seed, carrier=carrier))
    config = MptcpConfig()
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    done = []
    loader = PageLoader(testbed.sim, connection, sizes,
                        on_complete=done.append)
    MptcpListener(
        testbed.sim, testbed.server, HTTP_PORT, config,
        server_addrs=testbed.server_addrs,
        on_connection=lambda server_conn: HttpServerSession(
            server_conn, loader.responder(), close_after=None))
    connection.connect()
    testbed.run(until=300.0)
    return loader.record, done


def test_page_load_end_to_end():
    sizes = [40 * KB, 16 * KB, 8 * KB, 200 * KB]
    record, done = load_page(sizes)
    assert record.complete
    assert done and done[0] is record
    assert record.objects_loaded == 4
    assert 0 < record.time_to_first_byte < record.page_load_time
    assert record.total_bytes == sum(sizes)


def test_single_object_page():
    record, _ = load_page([10 * KB])
    assert record.complete
    assert record.objects_loaded == 1


def test_sequential_fetch_orders_objects():
    """Objects arrive strictly one after another (HTTP/1.1, no
    pipelining): more objects cost more round trips."""
    few, _ = load_page([16 * KB] * 2, seed=62)
    many, _ = load_page([16 * KB] * 10, seed=62)
    assert many.page_load_time > few.page_load_time

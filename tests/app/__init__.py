"""Test package."""

"""Tests for the ping warm-up probe."""


from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
from repro.app.ping import (
    EchoResponder,
    Pinger,
    warm_up_with_pings,
)
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.testbed import Testbed, TestbedConfig
from repro.wireless.rrc import RadioState


def test_ping_measures_rtt_over_wifi():
    testbed = Testbed(TestbedConfig(seed=2, environment_jitter=False))
    EchoResponder(testbed.sim, testbed.server)
    pinger = Pinger(testbed.sim, testbed.client, "client.wifi",
                    testbed.server_addrs[0], count=3)
    pinger.start()
    testbed.run(until=5.0)
    result = pinger.result
    assert result.sent == 3
    assert result.all_answered
    # WiFi RTT ~20 ms, well under 100 ms.
    assert all(0.0 < rtt < 0.1 for rtt in result.rtts)


def test_first_cold_ping_pays_promotion_delay():
    testbed = Testbed(TestbedConfig(seed=2, warm_radio=False,
                                    environment_jitter=False))
    EchoResponder(testbed.sim, testbed.server)
    pinger = Pinger(testbed.sim, testbed.client, testbed.cellular_addr,
                    testbed.server_addrs[0], count=2)
    pinger.start()
    testbed.run(until=10.0)
    result = pinger.result
    assert result.all_answered
    promotion = testbed.applied_profiles[
        testbed.cellular_addr].promotion_delay
    assert result.rtts[0] >= promotion
    assert result.rtts[1] < result.rtts[0]


def test_warm_up_with_pings_promotes_radio():
    testbed = Testbed(TestbedConfig(seed=2, warm_radio=False))
    ready = []
    warm_up_with_pings(testbed, on_ready=lambda: ready.append(
        testbed.sim.now))
    testbed.run(until=10.0)
    assert ready, "warm-up must complete"
    radio = testbed.client.interfaces[testbed.cellular_addr].radio
    assert radio.state is RadioState.CONNECTED


def test_measurement_after_ping_warmup_avoids_promotion_hit():
    """The paper's methodology end-to-end: ping first, then download;
    the download sees no promotion delay despite a cold start."""
    size = 64 * 1024

    def run(warmup: bool) -> float:
        testbed = Testbed(TestbedConfig(seed=4, warm_radio=False))
        config = MptcpConfig()
        MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                      server_addrs=testbed.server_addrs,
                      on_connection=lambda c:
                      HttpServerSession.fixed(c, size))
        connection = MptcpConnection.client(
            testbed.sim, testbed.client,
            [testbed.cellular_addr],  # cellular-only: promotion matters
            testbed.server_addrs[0], HTTP_PORT, config)
        client = HttpClient(testbed.sim, connection, size)

        def begin():
            client.start()
            connection.connect()

        if warmup:
            warm_up_with_pings(testbed, on_ready=begin)
        else:
            begin()
        testbed.run(until=30.0)
        assert client.record.complete
        return client.record.download_time

    cold = run(warmup=False)
    warmed = run(warmup=True)
    # Cold start pays the LTE promotion (~260 ms) inside the download.
    assert cold > warmed + 0.15


def test_unanswered_probe_counted():
    testbed = Testbed(TestbedConfig(seed=2))
    # No responder bound: probes vanish at the server.
    pinger = Pinger(testbed.sim, testbed.client, "client.wifi",
                    testbed.server_addrs[0], count=2)
    pinger.start()
    testbed.run(until=3.0)
    assert pinger.result.sent == 2
    assert pinger.result.received == 0
    assert not pinger.result.all_answered

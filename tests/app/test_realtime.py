"""Tests for the real-time frame-stream workload."""

import pytest

from repro.app.http import HTTP_PORT
from repro.app.realtime import (
    TOLERANCE_150MS,
    VIDEO_CALL,
    VOIP,
    RealtimeProfile,
    RealtimeReport,
    RealtimeSink,
    RealtimeStream,
)
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.testbed import Testbed, TestbedConfig


def test_profiles_are_sane():
    assert VOIP.bitrate_bps == pytest.approx(200 * 8 / 0.02)
    assert VIDEO_CALL.bitrate_bps > VOIP.bitrate_bps


def test_report_statistics():
    report = RealtimeReport(latencies=[0.05, 0.10, 0.30, 0.20])
    assert report.frames_delivered == 4
    assert report.mean_latency() == pytest.approx(0.1625)
    assert report.worst_latency() == pytest.approx(0.30)
    assert report.fraction_within(0.150) == pytest.approx(0.5)


def test_empty_report():
    report = RealtimeReport()
    assert report.fraction_within() == 0.0
    assert report.mean_latency() == 0.0


def run_stream(profile, carrier="att", scheduler="minrtt", seed=21):
    testbed = Testbed(TestbedConfig(carrier=carrier, seed=seed))
    config = MptcpConfig(scheduler=scheduler)
    state = {}

    def on_connection(server_conn):
        stream = RealtimeStream(testbed.sim, server_conn, profile)
        state["stream"] = stream
        stream.start()

    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=on_connection)
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    sinks = {}

    def attach_sink():
        sinks["sink"] = RealtimeSink(testbed.sim, connection,
                                     state["stream"])

    connection.on_established = attach_sink
    connection.connect()
    testbed.run(until=profile.frames * profile.interval + 60.0)
    return sinks["sink"].report


def test_all_frames_delivered_in_order():
    profile = RealtimeProfile(name="t", frame_bytes=500, interval=0.05,
                              frames=40)
    report = run_stream(profile)
    assert report.frames_delivered == 40
    # Latencies are one-way delays: positive and sub-second on LTE+WiFi.
    assert all(0 < latency < 1.0 for latency in report.latencies)


def test_lte_wifi_pairing_meets_budget():
    profile = RealtimeProfile(name="t", frame_bytes=500, interval=0.05,
                              frames=60)
    report = run_stream(profile, carrier="att")
    assert report.fraction_within(TOLERANCE_150MS) > 0.9


def test_redundant_scheduler_tames_3g_pairing():
    """Sprint+WiFi breaks the budget with minRTT, not with redundant."""
    profile = RealtimeProfile(name="t", frame_bytes=1200, interval=0.04,
                              frames=150)
    minrtt = run_stream(profile, carrier="sprint", scheduler="minrtt")
    redundant = run_stream(profile, carrier="sprint",
                           scheduler="redundant")
    assert redundant.fraction_within() >= minrtt.fraction_within()
    assert redundant.worst_latency() <= minrtt.worst_latency() * 1.05

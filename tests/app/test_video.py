"""Tests for the streaming-video workload model."""

import random

import pytest

from repro.app.http import HTTP_PORT, \
    PlainTcpAcceptor
from repro.app.video import (
    NETFLIX_ANDROID,
    NETFLIX_IPAD,
    YOUTUBE,
    StreamingProfile,
    VideoSession,
)
from repro.core.coupling import RenoController
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig, TcpEndpoint

from tests.conftest import build_mininet

MB = 1024 * 1024


def test_profiles_match_table7():
    assert NETFLIX_ANDROID.prefetch_mean == pytest.approx(40.6 * MB)
    assert NETFLIX_ANDROID.block_mean == pytest.approx(5.2 * MB)
    assert NETFLIX_ANDROID.period_mean == pytest.approx(72.0)
    assert NETFLIX_IPAD.prefetch_mean == pytest.approx(15.0 * MB)
    assert NETFLIX_IPAD.block_mean == pytest.approx(1.8 * MB)
    assert NETFLIX_IPAD.period_mean == pytest.approx(10.2)


def test_youtube_profile_in_documented_range():
    assert 10 * MB <= YOUTUBE.prefetch_mean <= 15 * MB
    assert 64 * 1024 <= YOUTUBE.block_mean <= 512 * 1024


def test_draws_are_positive_and_near_mean():
    rng = random.Random(1)
    profile = NETFLIX_IPAD
    prefetches = [profile.draw_prefetch(rng) for _ in range(200)]
    assert all(p > 0 for p in prefetches)
    mean = sum(prefetches) / len(prefetches)
    assert mean == pytest.approx(profile.prefetch_mean, rel=0.1)
    periods = [profile.draw_period(rng) for _ in range(200)]
    assert all(p >= 0.5 for p in periods)


def test_session_end_to_end_over_fast_link():
    net = build_mininet(rate_bps=200e6, buffer_bytes=10 ** 7)
    config = TcpConfig()
    # Small, fast profile so the test stays quick.
    profile = StreamingProfile(
        name="tiny", prefetch_mean=200_000, prefetch_std=10_000,
        block_mean=50_000, block_std=5_000,
        period_mean=0.5, period_std=0.05)
    rng = random.Random(7)
    finished = []
    endpoint = TcpEndpoint(net.sim, net.client, "client.wifi",
                           net.client.ephemeral_port(), "server.eth0",
                           HTTP_PORT, config, RenoController())
    session = VideoSession(net.sim, endpoint, profile, rng, n_blocks=3,
                           on_finished=finished.append)
    PlainTcpAcceptor(net.sim, net.server, HTTP_PORT, config,
                     RenoController, responder=session.responder())
    endpoint.connect()
    net.run(until=30.0)
    assert finished, "session must complete"
    assert session.finished
    assert len(session.blocks) == 4  # prefetch + 3 blocks
    assert all(block.completed_at is not None for block in session.blocks)
    summary = session.summary()
    assert summary.blocks == 3
    assert summary.prefetch_bytes == session.blocks[0].size
    assert summary.period_mean == pytest.approx(0.5, rel=0.4)


def test_session_counts_stalls_on_slow_path():
    net = build_mininet(rate_bps=1e6)  # ~1 Mbit/s: blocks outlast periods
    config = TcpConfig()
    profile = StreamingProfile(
        name="heavy", prefetch_mean=400_000, prefetch_std=1_000,
        block_mean=400_000, block_std=1_000,
        period_mean=0.6, period_std=0.01)
    rng = random.Random(3)
    endpoint = TcpEndpoint(net.sim, net.client, "client.wifi",
                           net.client.ephemeral_port(), "server.eth0",
                           HTTP_PORT, config, RenoController())
    session = VideoSession(net.sim, endpoint, profile, rng, n_blocks=3)
    PlainTcpAcceptor(net.sim, net.server, HTTP_PORT, config,
                     RenoController, responder=session.responder())
    endpoint.connect()
    net.run(until=60.0)
    # Each 400 KB block needs ~3.2s on a 1 Mbit/s link but the player
    # wants one every 0.6s: every block after the first is late.
    assert session.stalls >= 2


def test_summary_on_unfinished_session_is_safe():
    sim = Simulator()

    class DeadTransport:
        on_receive = None
        on_established = None

        def send(self, n):
            pass

        def close(self):
            pass

    session = VideoSession(sim, DeadTransport(), NETFLIX_IPAD,
                           random.Random(1), n_blocks=2)
    summary = session.summary()
    assert summary.blocks == 0
    assert summary.prefetch_bytes == 0

"""Tests for the HTTP workload layer."""

import pytest

from repro.app.http import (
    HTTP_PORT,
    REQUEST_SIZE,
    DownloadRecord,
    HttpClient,
    HttpServerSession,
    PlainTcpAcceptor,
)
from repro.core.coupling import RenoController
from repro.sim.engine import Simulator
from repro.tcp.endpoint import TcpConfig, TcpEndpoint

from tests.conftest import build_mininet


class FakeTransport:
    """In-memory transport for session-level unit tests."""

    def __init__(self):
        self.on_receive = None
        self.on_established = None
        self.sent = []
        self.closed = False

    def send(self, nbytes):
        self.sent.append(nbytes)

    def close(self):
        self.closed = True


def test_server_session_answers_complete_request():
    transport = FakeTransport()
    HttpServerSession.fixed(transport, size=1000)
    transport.on_receive(REQUEST_SIZE)
    assert transport.sent == [1000]
    assert transport.closed  # single-object server closes after reply


def test_server_session_waits_for_full_request():
    transport = FakeTransport()
    HttpServerSession.fixed(transport, size=1000)
    transport.on_receive(REQUEST_SIZE - 1)
    assert transport.sent == []
    transport.on_receive(1)
    assert transport.sent == [1000]


def test_server_session_serves_multiple_requests_when_kept_alive():
    transport = FakeTransport()
    sizes = [100, 200, 300]
    HttpServerSession(transport, lambda i: sizes[i], close_after=None)
    for _ in range(3):
        transport.on_receive(REQUEST_SIZE)
    assert transport.sent == sizes
    assert not transport.closed


def test_server_session_refuses_with_none():
    transport = FakeTransport()
    HttpServerSession(transport, lambda i: None, close_after=None)
    transport.on_receive(REQUEST_SIZE)
    assert transport.sent == []
    assert transport.closed


def test_server_session_close_after_n():
    transport = FakeTransport()
    HttpServerSession(transport, lambda i: 10, close_after=2)
    transport.on_receive(REQUEST_SIZE)
    assert not transport.closed
    transport.on_receive(REQUEST_SIZE)
    assert transport.closed
    assert transport.sent == [10, 10]


def test_client_sends_request_on_establishment():
    sim = Simulator()
    transport = FakeTransport()
    client = HttpClient(sim, transport, size=5000)
    transport.on_established()
    assert transport.sent == [REQUEST_SIZE]
    assert client.record.established_at == 0.0


def test_client_records_completion_once():
    sim = Simulator()
    transport = FakeTransport()
    completions = []
    client = HttpClient(sim, transport, size=1000,
                        on_complete=completions.append)
    transport.on_established()
    transport.on_receive(600)
    assert not client.record.complete
    transport.on_receive(600)
    assert client.record.complete
    assert transport.closed
    transport.on_receive(1)  # stray extra byte changes nothing
    assert len(completions) == 1


def test_download_time_requires_completion():
    record = DownloadRecord(size=10)
    with pytest.raises(RuntimeError):
        _ = record.download_time


def test_end_to_end_over_plain_tcp():
    net = build_mininet()
    config = TcpConfig()
    PlainTcpAcceptor(net.sim, net.server, HTTP_PORT, config,
                     RenoController, responder=lambda i: 100_000)
    endpoint = TcpEndpoint(net.sim, net.client, "client.wifi",
                           net.client.ephemeral_port(), "server.eth0",
                           HTTP_PORT, config, RenoController())
    client = HttpClient(net.sim, endpoint, 100_000)
    client.start()
    endpoint.connect()
    net.run(until=30.0)
    record = client.record
    assert record.complete
    assert record.download_time > 0
    assert record.established_at < record.completed_at
    assert record.bytes_received == 100_000

"""Test package."""

"""Tests for the link hot path: the modulation catch-up clamp and the
fast (anonymous post) vs legacy (closure) scheduling equivalence."""

import random

import pytest

from repro.netsim.link import Link, LinkConfig, RateModulation
from repro.netsim.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.segment import Segment


def make_packet(payload: int = 1000) -> Packet:
    segment = Segment(src_port=1, dst_port=2, payload_len=payload)
    return Packet("a", "b", segment)


def make_link(sim, rate=8e6, prop=0.01, modulation=None, seed=7):
    config = LinkConfig(rate_bps=rate, prop_delay=prop,
                        buffer_bytes=100_000, modulation=modulation)
    return Link(sim, config, random.Random(seed))


# ----------------------------------------------------------------------
# Modulation catch-up clamp
# ----------------------------------------------------------------------

def test_long_idle_catch_up_is_clamped():
    """After a very long idle gap, the AR(1) catch-up loop runs at
    most 10k iterations instead of one per elapsed interval."""
    sim = Simulator()
    modulation = RateModulation(sigma=0.05, interval=0.1)
    link = make_link(sim, modulation=modulation)
    draws = {"n": 0}
    real_gauss = link.rng.gauss

    def counting_gauss(mu, sigma):
        draws["n"] += 1
        return real_gauss(mu, sigma)

    link.rng.gauss = counting_gauss
    sim.schedule(1_000_000.0, link.current_rate)  # ~10M intervals idle
    sim.run()
    assert draws["n"] == 10_000


def test_clamped_catch_up_advances_step_cursor_by_applied_work():
    """_last_modulation_step must advance only by the iterations that
    actually ran.  If it jumped to `now`, the next call would see zero
    elapsed steps and skip the AR(1) evolution (and its RNG draws) it
    still owes for the residual gap."""
    sim = Simulator()
    modulation = RateModulation(sigma=0.05, interval=0.1)
    link = make_link(sim, modulation=modulation)
    sim.schedule(2_000.0, link.current_rate)  # 20k intervals: clamped
    sim.run()
    assert link._last_modulation_step == pytest.approx(10_000 * 0.1)
    # The second call, in the same instant, applies the remaining 10k.
    draws = {"n": 0}
    real_gauss = link.rng.gauss
    link.rng.gauss = lambda mu, sigma: (
        draws.__setitem__("n", draws["n"] + 1) or real_gauss(mu, sigma))
    link.current_rate()
    assert draws["n"] == 10_000
    assert link._last_modulation_step == pytest.approx(2_000.0)


def test_short_gap_applies_every_interval():
    sim = Simulator()
    modulation = RateModulation(sigma=0.05, interval=0.1)
    link = make_link(sim, modulation=modulation)
    draws = {"n": 0}
    real_gauss = link.rng.gauss
    link.rng.gauss = lambda mu, sigma: (
        draws.__setitem__("n", draws["n"] + 1) or real_gauss(mu, sigma))
    sim.schedule(5.0, link.current_rate)
    sim.run()
    assert draws["n"] == 50


# ----------------------------------------------------------------------
# Fast vs legacy scheduling equivalence
# ----------------------------------------------------------------------

def _drive(fast: bool):
    """Send a burst through a jittery modulated link; return the
    delivery timeline (time, src_port) and the RNG state."""
    original = Link.use_fast_scheduling
    Link.use_fast_scheduling = fast
    try:
        sim = Simulator()
        modulation = RateModulation(sigma=0.05, interval=0.01)
        config = LinkConfig(rate_bps=4e6, prop_delay=0.005,
                            buffer_bytes=50_000, loss_rate=0.02,
                            jitter_mean=0.001, modulation=modulation)
        link = Link(sim, config, random.Random(42))
        timeline = []
        link.deliver = lambda packet: timeline.append(
            (sim.now, packet.segment.src_port))
        for index in range(40):
            sim.schedule(0.001 * index, link.send, make_packet(1000))
        for index in range(40):
            segment = Segment(src_port=100 + index, dst_port=2,
                              payload_len=600)
            sim.schedule(0.02 + 0.0005 * index, link.send,
                         Packet("a", "b", segment))
        sim.run()
        return timeline, link.rng.random(), link.stats
    finally:
        Link.use_fast_scheduling = original


def test_fast_and_legacy_scheduling_are_equivalent():
    """Both paths consume one engine sequence number per packet per
    hop, so timelines, RNG consumption and stats match exactly."""
    fast_timeline, fast_rng, fast_stats = _drive(True)
    legacy_timeline, legacy_rng, legacy_stats = _drive(False)
    assert fast_timeline == legacy_timeline
    assert fast_rng == legacy_rng
    assert fast_stats == legacy_stats

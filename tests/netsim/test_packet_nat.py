"""Tests for packets and the NAT filter."""

import pytest

from repro.netsim.nat import Nat
from repro.core.options import DssMapping, MptcpOptions
from repro.netsim.packet import Packet
from repro.tcp.segment import Segment


def make_packet(src="client.wifi", dst="server.eth0", src_port=1000,
                dst_port=80, payload=0, **kwargs):
    segment = Segment(src_port=src_port, dst_port=dst_port,
                      payload_len=payload, **kwargs)
    return Packet(src, dst, segment)


def test_wire_size_includes_header_overhead():
    # Plain segment: 20 B TCP base header + 20 B IP.
    assert make_packet(payload=1000).wire_size == 1000 + 40
    assert make_packet(payload=0).wire_size == 40


def test_wire_size_grows_with_options_and_sack():
    options = MptcpOptions(dss=DssMapping(dsn=0, ssn=1, length=1000),
                           data_ack=0)
    with_dss = make_packet(payload=1000, options=options)
    # 20 base + 20 DSS (rounded) + 20 IP.
    assert with_dss.wire_size == 1000 + 60
    with_sack = make_packet(payload=0, sack_blocks=((100, 200),))
    # 20 base + 10 SACK -> padded to 32, + 20 IP.
    assert with_sack.wire_size == 52


def test_mptcp_option_wire_lengths():
    assert MptcpOptions(mp_capable=True, token=1).wire_length() == 12
    assert MptcpOptions(mp_join=True, token=1).wire_length() == 12
    assert MptcpOptions(data_ack=5).wire_length() == 8
    assert MptcpOptions(dss=DssMapping(0, 1, 10),
                        data_ack=5).wire_length() == 20
    assert MptcpOptions(add_addr=("a", "b")).wire_length() == 16
    assert MptcpOptions(dead_addrs=("a",)).wire_length() == 12
    assert MptcpOptions().wire_length() == 0


def test_packet_ids_are_unique_and_increasing():
    a, b = make_packet(), make_packet()
    assert b.packet_id > a.packet_id


def test_nat_drops_without_mapping():
    nat = Nat()
    inbound = make_packet(src="server.eth0", dst="client.wifi",
                          src_port=80, dst_port=1000)
    assert not nat.allows(inbound)
    assert nat.dropped == 1


def test_nat_allows_after_outbound():
    nat = Nat()
    nat.note_outbound(make_packet())
    inbound = make_packet(src="server.eth0", dst="client.wifi",
                          src_port=80, dst_port=1000)
    assert nat.allows(inbound)


def test_nat_mapping_is_port_specific():
    nat = Nat()
    nat.note_outbound(make_packet(src_port=1000))
    other_port = make_packet(src="server.eth0", dst="client.wifi",
                             src_port=80, dst_port=2000)
    assert not nat.allows(other_port)


def test_nat_mapping_is_peer_specific():
    nat = Nat()
    nat.note_outbound(make_packet(dst="server.eth0"))
    from_other = make_packet(src="server.eth1", dst="client.wifi",
                             src_port=80, dst_port=1000)
    assert not nat.allows(from_other)


def test_nat_idle_timeout_requires_clock():
    with pytest.raises(ValueError):
        Nat(idle_timeout=30.0)


def test_nat_idle_timeout_expires_quiet_bindings():
    clock = SettableClock(0.0)
    nat = Nat(idle_timeout=30.0, clock=clock)
    nat.note_outbound(make_packet())
    inbound = make_packet(src="server.eth0", dst="client.wifi",
                          src_port=80, dst_port=1000)
    clock.now = 29.0
    assert nat.allows(inbound)
    # The inbound packet refreshed the binding: quiet since 29.0.
    clock.now = 58.0
    assert nat.allows(inbound)
    clock.now = 100.0
    assert not nat.allows(inbound)
    assert nat.expired == 1
    assert nat.dropped == 1
    # Fresh outbound traffic re-creates the binding.
    nat.note_outbound(make_packet())
    assert nat.allows(inbound)


def test_nat_default_keeps_bindings_forever():
    clock = SettableClock(0.0)
    nat = Nat(clock=clock)
    nat.note_outbound(make_packet())
    clock.now = 1e9
    inbound = make_packet(src="server.eth0", dst="client.wifi",
                          src_port=80, dst_port=1000)
    assert nat.allows(inbound)
    assert nat.expired == 0


class SettableClock:
    def __init__(self, now):
        self.now = now

    def __call__(self):
        return self.now

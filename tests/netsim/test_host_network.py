"""Tests for hosts, interfaces, routing, and demultiplexing."""

import pytest

from repro.netsim.host import Interface
from repro.netsim.nat import Nat
from repro.netsim.packet import Packet
from repro.tcp.segment import Flags, Segment

from tests.conftest import build_mininet


def make_segment(src_port=1000, dst_port=80, **kwargs):
    return Segment(src_port=src_port, dst_port=dst_port, **kwargs)


class RecordingSink:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append(packet)


class RecordingListener:
    def __init__(self):
        self.syns = []

    def handle_syn(self, packet, host):
        self.syns.append(packet)


def test_routing_delivers_between_hosts():
    net = build_mininet()
    sink = RecordingSink()
    net.server.register_endpoint(("server.eth0", 80, "client.wifi", 1000),
                                 sink)
    packet = Packet("client.wifi", "server.eth0", make_segment())
    net.client.send(packet)
    net.run()
    assert sink.packets == [packet]


def test_unroutable_destination_is_black_holed():
    net = build_mininet()
    packet = Packet("client.wifi", "nowhere.iface", make_segment())
    net.client.send(packet)
    net.run()  # must not raise
    assert net.server.packets_received == 0


def test_send_requires_owning_interface():
    net = build_mininet()
    packet = Packet("server.eth0", "client.wifi", make_segment())
    with pytest.raises(ValueError):
        net.client.send(packet)


def test_listener_receives_unmatched_syn():
    net = build_mininet()
    listener = RecordingListener()
    net.server.bind_listener(80, listener)
    syn = Packet("client.wifi", "server.eth0",
                 make_segment(flags=Flags(syn=True)))
    net.client.send(syn)
    net.run()
    assert len(listener.syns) == 1


def test_non_syn_without_endpoint_is_refused():
    net = build_mininet()
    listener = RecordingListener()
    net.server.bind_listener(80, listener)
    data = Packet("client.wifi", "server.eth0",
                  make_segment(flags=Flags(ack=True), payload_len=10))
    net.client.send(data)
    net.run()
    assert listener.syns == []
    assert net.server.packets_refused == 1


def test_endpoint_match_takes_precedence_over_listener():
    net = build_mininet()
    listener = RecordingListener()
    sink = RecordingSink()
    net.server.bind_listener(80, listener)
    net.server.register_endpoint(("server.eth0", 80, "client.wifi", 1000),
                                 sink)
    syn = Packet("client.wifi", "server.eth0",
                 make_segment(flags=Flags(syn=True)))
    net.client.send(syn)
    net.run()
    assert sink.packets and not listener.syns


def test_duplicate_listener_binding_rejected():
    net = build_mininet()
    net.server.bind_listener(80, RecordingListener())
    with pytest.raises(ValueError):
        net.server.bind_listener(80, RecordingListener())


def test_duplicate_endpoint_binding_rejected():
    net = build_mininet()
    key = ("server.eth0", 80, "client.wifi", 1000)
    net.server.register_endpoint(key, RecordingSink())
    with pytest.raises(ValueError):
        net.server.register_endpoint(key, RecordingSink())


def test_unregister_endpoint_allows_rebinding():
    net = build_mininet()
    key = ("server.eth0", 80, "client.wifi", 1000)
    net.server.register_endpoint(key, RecordingSink())
    net.server.unregister_endpoint(key)
    net.server.register_endpoint(key, RecordingSink())


def test_capture_hooks_see_both_directions():
    net = build_mininet()
    events = []
    net.client.add_capture_hook(
        lambda direction, time, packet: events.append(direction))
    sink = RecordingSink()
    net.server.register_endpoint(("server.eth0", 80, "client.wifi", 1000),
                                 sink)
    net.client.send(Packet("client.wifi", "server.eth0", make_segment()))
    net.run()
    # Nothing comes back, so the client capture sees only the send.
    assert events == ["send"]


def test_ephemeral_ports_are_unique():
    net = build_mininet()
    ports = {net.client.ephemeral_port() for _ in range(100)}
    assert len(ports) == 100


def test_duplicate_interface_address_rejected():
    net = build_mininet()
    with pytest.raises(ValueError):
        net.network.attach(net.client,
                           Interface("dup", "client.wifi"),
                           up=net.client.interfaces["client.wifi"]
                           .up_link.config,
                           down=net.client.interfaces["client.wifi"]
                           .down_link.config)


def test_nat_blocks_unsolicited_inbound_syn():
    net = build_mininet()
    net.client.interfaces["client.wifi"].nat = Nat()
    listener = RecordingListener()
    net.client.bind_listener(9999, listener)
    syn = Packet("server.eth0", "client.wifi",
                 make_segment(src_port=80, dst_port=9999,
                              flags=Flags(syn=True)))
    net.server.send(syn)
    net.run()
    assert listener.syns == []
    assert net.client.packets_refused == 1


def test_nat_allows_reply_to_outbound_flow():
    net = build_mininet()
    net.client.interfaces["client.wifi"].nat = Nat()
    sink = RecordingSink()
    net.client.register_endpoint(("client.wifi", 1000, "server.eth0", 80),
                                 sink)
    out = Packet("client.wifi", "server.eth0",
                 make_segment(src_port=1000, dst_port=80,
                              flags=Flags(syn=True)))
    net.client.send(out)
    reply = Packet("server.eth0", "client.wifi",
                   make_segment(src_port=80, dst_port=1000,
                                flags=Flags(syn=True, ack=True)))
    net.server.send(reply)
    net.run()
    assert len(sink.packets) == 1

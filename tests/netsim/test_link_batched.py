"""Vectorized packet core: batched link pipeline equivalence tests.

The batched pipeline (``Link._serve_burst`` + ``Simulator.post_batch``)
must be *unobservable*: identical delivery streams (time, subflow
sequence number, DSN), identical RNG consumption, identical stats,
against the legacy scalar per-packet pipeline selected by
``REPRO_SCALAR=1``.  A hypothesis property drives both pipelines
through random bursts, loss, jitter, ARQ and rate modulation.

Also here: the regression test for the hoisted no-modulation check
(satellite): unmodulated links must never enter the AR(1) stepping
code on the per-packet path.
"""

import os
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.options import DssMapping, MptcpOptions
from repro.netsim.link import ArqConfig, Link, LinkConfig, RateModulation
from repro.netsim.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.segment import Segment


# ----------------------------------------------------------------------
# Hoisted no-modulation check
# ----------------------------------------------------------------------

def _counting_link(modulation):
    sim = Simulator()
    config = LinkConfig(rate_bps=8e6, prop_delay=0.001,
                        buffer_bytes=100_000, modulation=modulation)
    link = Link(sim, config, random.Random(3))
    calls = {"n": 0}
    original = link._step_modulation

    def counting(now=None):
        calls["n"] += 1
        return original(now)

    link._step_modulation = counting
    return sim, link, calls


def _pump(sim, link, packets=20):
    for index in range(packets):
        segment = Segment(src_port=index, dst_port=2, payload_len=1000)
        sim.schedule(0.0005 * index, link.send, Packet("a", "b", segment))
    sim.run()


def test_unmodulated_link_never_steps_modulation():
    """Satellite: the no-modulation check is hoisted out of the
    per-packet path -- ``_step_modulation`` is not even called."""
    sim, link, calls = _counting_link(modulation=None)
    _pump(sim, link)
    assert link.stats.packets_delivered == 20
    assert calls["n"] == 0


def test_sigma_zero_modulation_counts_as_unmodulated():
    sim, link, calls = _counting_link(
        modulation=RateModulation(sigma=0.0, interval=0.1))
    _pump(sim, link)
    assert link.stats.packets_delivered == 20
    assert calls["n"] == 0


def test_modulated_link_still_steps_per_service_start():
    sim, link, calls = _counting_link(
        modulation=RateModulation(sigma=0.05, interval=0.01))
    _pump(sim, link)
    assert link.stats.packets_delivered == 20
    assert calls["n"] > 0


# ----------------------------------------------------------------------
# Batched vs REPRO_SCALAR=1 equivalence (hypothesis property)
# ----------------------------------------------------------------------

def _drive(bursts, loss_rate, jitter, use_arq, modulated, seed,
           scalar):
    """Run one burst schedule through a link; return the delivery
    stream as exact (time, seq, dsn) triples plus RNG state and stats.

    ``scalar=True`` builds the link under ``REPRO_SCALAR=1``, selecting
    the legacy per-packet pipeline at construction time.
    """
    if scalar:
        os.environ["REPRO_SCALAR"] = "1"
    try:
        sim = Simulator()
        config = LinkConfig(
            rate_bps=4e6, prop_delay=0.005, buffer_bytes=200_000,
            loss_rate=loss_rate, jitter_mean=jitter,
            arq=ArqConfig(error_rate=0.1, recovery_min=0.002,
                          recovery_max=0.01,
                          residual_loss=0.2) if use_arq else None,
            modulation=RateModulation(sigma=0.05, interval=0.01)
            if modulated else None)
        link = Link(sim, config, random.Random(seed))
        assert link._vectorized is not scalar

        stream = []

        def deliver(packet):
            segment = packet.segment
            stream.append((sim.now, segment.seq,
                           segment.options.dss.dsn))

        link.deliver = deliver
        at = 0.0
        for index, (gap, size) in enumerate(bursts):
            at += gap * 0.0004
            options = MptcpOptions(dss=DssMapping(
                dsn=100_000 + 2 * index, ssn=index, length=size))
            segment = Segment(src_port=1, dst_port=2, seq=index,
                              payload_len=size, options=options)
            sim.schedule(at, link.send, Packet("a", "b", segment))
        sim.run()
        return stream, link.rng.random(), link.stats
    finally:
        if scalar:
            del os.environ["REPRO_SCALAR"]


@settings(max_examples=40, deadline=None)
@given(
    bursts=st.lists(st.tuples(st.integers(0, 40),
                              st.integers(40, 1500)),
                    min_size=1, max_size=60),
    loss_rate=st.sampled_from([0.0, 0.05, 0.3]),
    jitter=st.sampled_from([0.0, 0.001]),
    use_arq=st.booleans(),
    modulated=st.booleans(),
    seed=st.integers(0, 2 ** 16),
)
def test_batched_pipeline_matches_scalar(bursts, loss_rate, jitter,
                                         use_arq, modulated, seed):
    """Satellite: batched and REPRO_SCALAR=1 runs produce bit-equal
    (time, seq, dsn) delivery streams, RNG states and stats across
    random bursts, losses, jitter, ARQ and modulation."""
    batched = _drive(bursts, loss_rate, jitter, use_arq, modulated,
                     seed, scalar=False)
    legacy = _drive(bursts, loss_rate, jitter, use_arq, modulated,
                    seed, scalar=True)
    assert batched[0] == legacy[0]
    assert batched[1] == legacy[1]
    assert batched[2] == legacy[2]


def test_numpy_clean_link_path_matches_scalar():
    """The RNG-free numpy path (>= 16 queued packets, no loss, no
    jitter, no ARQ, no modulation) must also be float-exact."""
    bursts = [(0, 1448)] * 40  # one instant: a 40-deep burst
    batched = _drive(bursts, 0.0, 0.0, False, False, 11, scalar=False)
    legacy = _drive(bursts, 0.0, 0.0, False, False, 11, scalar=True)
    assert batched == legacy

"""Tests for the link model: serialization, buffering, loss, ARQ."""

import random

import pytest

from repro.netsim.link import ArqConfig, Link, LinkConfig, RateModulation
from repro.netsim.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.segment import Segment




def PLAIN_WIRE(payload):
    """Wire size of a plain (option-less, SACK-less) segment."""
    return payload + 40  # 20 B TCP base header + 20 B IP

def make_packet(payload: int = 1000) -> Packet:
    segment = Segment(src_port=1, dst_port=2, payload_len=payload)
    return Packet("a", "b", segment)


def make_link(sim, rate=8e6, prop=0.01, buffer_bytes=100_000, loss=0.0,
              jitter=0.0, arq=None, modulation=None, seed=1):
    config = LinkConfig(rate_bps=rate, prop_delay=prop,
                        buffer_bytes=buffer_bytes, loss_rate=loss,
                        jitter_mean=jitter, arq=arq, modulation=modulation)
    return Link(sim, config, random.Random(seed))


def test_delivery_time_is_serialization_plus_propagation():
    sim = Simulator()
    link = make_link(sim, rate=8e6, prop=0.01)
    arrivals = []
    link.deliver = lambda packet: arrivals.append(sim.now)
    packet = make_packet(1000)
    link.send(packet)
    sim.run()
    expected = PLAIN_WIRE(1000) * 8 / 8e6 + 0.01
    assert arrivals == [pytest.approx(expected)]


def test_back_to_back_packets_queue_behind_each_other():
    sim = Simulator()
    link = make_link(sim, rate=8e6, prop=0.0)
    arrivals = []
    link.deliver = lambda packet: arrivals.append(sim.now)
    for _ in range(3):
        link.send(make_packet(1000))
    sim.run()
    service = PLAIN_WIRE(1000) * 8 / 8e6
    assert arrivals == pytest.approx([service, 2 * service, 3 * service])


def test_queueing_delay_estimate_tracks_queue():
    sim = Simulator()
    link = make_link(sim, rate=8e6, prop=0.0)
    link.deliver = lambda packet: None
    assert link.queueing_delay_estimate() == 0.0
    link.send(make_packet(1000))  # enters service immediately
    link.send(make_packet(1000))  # queued
    assert link.queue_bytes == PLAIN_WIRE(1000)
    assert link.queueing_delay_estimate() == pytest.approx(
        PLAIN_WIRE(1000) * 8 / 8e6)


def test_drop_tail_overflow():
    sim = Simulator()
    link = make_link(sim, buffer_bytes=2500)
    delivered = []
    link.deliver = lambda packet: delivered.append(packet)
    for _ in range(5):
        link.send(make_packet(1000))
    sim.run()
    # One in service immediately; the buffer fits two more (2 x 1040).
    assert link.stats.drops_overflow == 2
    assert len(delivered) == 3


def test_conservation_offered_equals_delivered_plus_drops():
    sim = Simulator()
    link = make_link(sim, buffer_bytes=5000, loss=0.3, seed=7)
    delivered = []
    link.deliver = lambda packet: delivered.append(packet)
    offered = 200

    def feed(i=0):
        if i < offered:
            link.send(make_packet(500))
            sim.schedule(0.002, lambda: feed(i + 1))

    feed()
    sim.run()
    stats = link.stats
    assert stats.packets_offered == offered
    assert (len(delivered) + stats.drops_overflow + stats.drops_loss
            + stats.drops_arq_residual) == offered


def test_bernoulli_loss_rate_statistics():
    sim = Simulator()
    link = make_link(sim, loss=0.1, buffer_bytes=10 ** 9, seed=3)
    count = [0]
    link.deliver = lambda packet: count.__setitem__(0, count[0] + 1)
    n = 5000

    def feed(i=0):
        if i < n:
            link.send(make_packet(100))
            sim.schedule(0.001, lambda: feed(i + 1))

    feed()
    sim.run()
    loss = 1 - count[0] / n
    assert 0.07 < loss < 0.13


def test_arq_converts_losses_to_delay():
    sim = Simulator()
    arq = ArqConfig(error_rate=1.0, recovery_min=0.05, recovery_max=0.05,
                    residual_loss=0.0)
    link = make_link(sim, rate=8e6, prop=0.01, arq=arq)
    arrivals = []
    link.deliver = lambda packet: arrivals.append(sim.now)
    link.send(make_packet(1000))
    sim.run()
    expected = PLAIN_WIRE(1000) * 8 / 8e6 + 0.01 + 0.05
    assert arrivals == [pytest.approx(expected)]
    assert link.stats.arq_recoveries == 1
    assert link.stats.drops_arq_residual == 0


def test_arq_residual_loss_drops():
    sim = Simulator()
    arq = ArqConfig(error_rate=1.0, residual_loss=1.0)
    link = make_link(sim, arq=arq)
    delivered = []
    link.deliver = lambda packet: delivered.append(packet)
    link.send(make_packet(1000))
    sim.run()
    assert delivered == []
    assert link.stats.drops_arq_residual == 1


def test_delivery_order_is_fifo_even_with_jitter():
    sim = Simulator()
    link = make_link(sim, jitter=0.02, seed=9)
    order = []
    link.deliver = lambda packet: order.append(packet.packet_id)
    packets = [make_packet(100) for _ in range(50)]
    for packet in packets:
        link.send(packet)
    sim.run()
    assert order == [packet.packet_id for packet in packets]


def test_modulation_changes_rate_within_bounds():
    sim = Simulator()
    modulation = RateModulation(rho=0.5, sigma=0.5, interval=0.01,
                                floor=0.2, ceiling=1.8)
    link = make_link(sim, modulation=modulation, seed=4)
    rates = []

    def probe(i=0):
        rates.append(link.current_rate())
        if i < 200:
            sim.schedule(0.05, lambda: probe(i + 1))

    probe()
    sim.run()
    base = link.config.rate_bps
    assert min(rates) >= 0.2 * base - 1e-6
    assert max(rates) <= 1.8 * base + 1e-6
    assert len(set(rates)) > 10  # it actually varies


def test_modulation_disabled_with_zero_sigma():
    sim = Simulator()
    modulation = RateModulation(sigma=0.0)
    link = make_link(sim, modulation=modulation)
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert link.current_rate() == link.config.rate_bps


def test_peak_queue_statistic():
    sim = Simulator()
    link = make_link(sim)
    link.deliver = lambda packet: None
    for _ in range(4):
        link.send(make_packet(1000))
    assert link.stats.peak_queue_bytes == 3 * PLAIN_WIRE(1000)

"""Tests for the MPTCP-level trace analyzer, including the
cross-validation against the receive buffer's exact accounting."""

import statistics

import pytest

from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
from repro.core.connection import MptcpConfig, MptcpConnection, \
    MptcpListener
from repro.core.options import DssMapping, MptcpOptions
from repro.netsim.packet import Packet
from repro.tcp.segment import Flags, Segment
from repro.testbed import Testbed, TestbedConfig
from repro.trace.capture import PacketCapture, PacketRecord
from repro.trace.mptcptrace import analyze_mptcp

MB = 1024 * 1024


class FakeCapture:
    def __init__(self, records):
        self.records = records


def data_record(time, dsn, length, path="wifi"):
    options = MptcpOptions(dss=DssMapping(dsn=dsn, ssn=1, length=length))
    segment = Segment(src_port=8080, dst_port=4000, seq=1,
                      payload_len=length, flags=Flags(ack=True),
                      options=options)
    return PacketRecord(time, "recv",
                        Packet("server.eth0", f"client.{path}", segment))


def test_in_order_stream_has_zero_delays():
    records = [data_record(0.1 * i, 1000 * i, 1000) for i in range(5)]
    analysis = analyze_mptcp(FakeCapture(records))
    assert analysis.stream_bytes == 5000
    assert analysis.ofo_delays == [0.0] * 5
    assert analysis.in_order_fraction() == 1.0


def test_reordered_packet_waits_for_the_hole():
    records = [
        data_record(0.0, 0, 1000, path="wifi"),
        data_record(0.1, 2000, 1000, path="wifi"),   # early
        data_record(0.5, 1000, 1000, path="att"),    # fills the hole
    ]
    analysis = analyze_mptcp(FakeCapture(records))
    delays = sorted(analysis.ofo_delays)
    assert delays[0] == 0.0                  # first packet
    assert delays[1] == 0.0                  # the hole-filler itself
    assert delays[2] == pytest.approx(0.4)   # the early packet's wait


def test_duplicates_counted_not_delivered():
    records = [
        data_record(0.0, 0, 1000),
        data_record(0.1, 0, 1000, path="att"),  # exact duplicate
    ]
    analysis = analyze_mptcp(FakeCapture(records))
    assert analysis.stream_bytes == 1000
    assert analysis.duplicate_bytes == 1000
    assert analysis.bytes_by_path == {"wifi": 1000}


def test_shares_attributed_to_first_deliverer():
    records = [
        data_record(0.0, 0, 1000, path="wifi"),
        data_record(0.1, 1000, 1000, path="att"),
    ]
    analysis = analyze_mptcp(FakeCapture(records))
    assert analysis.bytes_by_path == {"wifi": 1000, "att": 1000}
    assert analysis.cellular_fraction() == pytest.approx(0.5)


def test_empty_capture():
    analysis = analyze_mptcp(FakeCapture([]))
    assert analysis.stream_bytes == 0
    assert analysis.in_order_fraction() == 1.0
    assert analysis.goodput_bps() == 0.0


def run_instrumented(carrier, size, seed):
    testbed = Testbed(TestbedConfig(carrier=carrier, seed=seed))
    capture = PacketCapture(testbed.client)
    config = MptcpConfig()
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    testbed.run(until=300.0)
    assert client.record.complete
    return capture, connection


@pytest.mark.parametrize("carrier", ["att", "sprint"])
def test_cross_validates_receive_buffer_accounting(carrier):
    """The capture-only reconstruction must agree with the receive
    buffer's exact internal accounting."""
    capture, connection = run_instrumented(carrier, 2 * MB, seed=17)
    from_trace = analyze_mptcp(capture)
    exact = connection.receive_buffer.metrics
    # Stream conservation.
    assert from_trace.stream_bytes == exact.delivered_bytes
    # Byte shares match exactly (both count unique bytes).
    assert from_trace.bytes_by_path == exact.bytes_by_path
    # In-order fractions agree closely (range splits differ slightly).
    assert from_trace.in_order_fraction() == pytest.approx(
        exact.in_order_fraction(), abs=0.08)
    # Mean reorder delays agree.
    if exact.delays():
        assert statistics.mean(from_trace.ofo_delays) == pytest.approx(
            statistics.mean(exact.delays()), rel=0.25, abs=0.005)

"""Tests for connection-level metric roll-ups."""

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement
from repro.netsim.packet import Packet
from repro.tcp.segment import Flags, Segment
from repro.trace.capture import PacketRecord
from repro.trace.metrics import (
    bytes_by_client_path,
    cellular_fraction,
    download_time_from_capture,
)


class FakeCapture:
    """Duck-typed capture carrying prebuilt records."""

    def __init__(self, records):
        self.records = records


def rec(time, direction, src, dst, payload=0, syn=False, ack_flag=False,
        src_port=1000, dst_port=80):
    segment = Segment(src_port=src_port, dst_port=dst_port,
                      payload_len=payload,
                      flags=Flags(syn=syn, ack=ack_flag))
    return PacketRecord(time, direction, Packet(src, dst, segment))


def test_download_time_first_syn_to_last_data():
    capture = FakeCapture([
        rec(1.0, "send", "client.wifi", "server.eth0", syn=True),
        rec(1.5, "recv", "server.eth0", "client.wifi", payload=1000,
            src_port=80, dst_port=1000),
        rec(2.5, "recv", "server.eth0", "client.wifi", payload=1000,
            src_port=80, dst_port=1000),
    ])
    assert download_time_from_capture(capture) == pytest.approx(1.5)


def test_download_time_none_without_data():
    capture = FakeCapture([
        rec(1.0, "send", "client.wifi", "server.eth0", syn=True)])
    assert download_time_from_capture(capture) is None


def test_bytes_by_client_path_groups_by_interface():
    capture = FakeCapture([
        rec(1.0, "recv", "server.eth0", "client.wifi", payload=700,
            src_port=80, dst_port=1000),
        rec(1.1, "recv", "server.eth0", "client.att", payload=300,
            src_port=80, dst_port=1001),
    ])
    assert bytes_by_client_path(capture) == {"wifi": 700, "att": 300}


def test_cellular_fraction():
    capture = FakeCapture([
        rec(1.0, "recv", "server.eth0", "client.wifi", payload=700,
            src_port=80, dst_port=1000),
        rec(1.1, "recv", "server.eth0", "client.att", payload=300,
            src_port=80, dst_port=1001),
    ])
    assert cellular_fraction(capture) == pytest.approx(0.3)


def test_cellular_fraction_empty_capture():
    assert cellular_fraction(FakeCapture([])) == 0.0


def test_connection_metrics_from_real_run():
    """Full pipeline: run a real MPTCP measurement, check coherence."""
    result = Measurement(FlowSpec.mptcp(carrier="att"),
                         size=512 * 1024, seed=4).run()
    assert result.completed
    metrics = result.metrics
    assert metrics.download_time is not None
    assert metrics.download_time == pytest.approx(result.download_time)
    assert metrics.bytes_received >= 512 * 1024
    assert 0.0 <= metrics.cellular_fraction <= 1.0
    assert "wifi" in metrics.per_path
    wifi = metrics.per_path["wifi"]
    assert wifi.data_packets_sent > 0
    assert wifi.rtt_samples, "server-side RTT samples must exist"
    assert 0.0 <= wifi.loss_rate < 0.3
    # OFO delays recorded at the client receive buffer.
    assert metrics.ofo_delays is not None


def test_connection_metrics_single_path_has_no_cellular():
    result = Measurement(FlowSpec.single_path("wifi"),
                         size=64 * 1024, seed=4).run()
    assert result.completed
    assert result.metrics.cellular_fraction == 0.0
    assert set(result.metrics.per_path) == {"wifi"}

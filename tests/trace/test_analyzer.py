"""Tests for the tcptrace-style analyzer on synthetic record streams."""

import pytest

from repro.netsim.packet import Packet
from repro.tcp.segment import Flags, Segment
from repro.trace.analyzer import analyze_flow
from repro.trace.capture import PacketRecord


def rec(time, direction, src, dst, seq=0, ack=0, payload=0, syn=False,
        ack_flag=False, fin=False, src_port=80, dst_port=1000):
    segment = Segment(src_port=src_port, dst_port=dst_port, seq=seq,
                      ack=ack, payload_len=payload,
                      flags=Flags(syn=syn, ack=ack_flag, fin=fin))
    return PacketRecord(time, direction, Packet(src, dst, segment))


S, C = "server.eth0", "client.wifi"


def data(time, seq, payload=1000):
    return rec(time, "send", S, C, seq=seq, payload=payload, ack_flag=True)


def ack(time, number):
    return rec(time, "recv", C, S, ack=number, ack_flag=True,
               src_port=1000, dst_port=80)


def test_clean_flow_rtt_and_loss():
    records = [
        data(0.0, 1), ack(0.05, 1001),
        data(0.1, 1001), ack(0.16, 2001),
    ]
    analysis = analyze_flow(records, S)
    assert analysis.data_packets_sent == 2
    assert analysis.retransmitted_packets == 0
    assert analysis.loss_rate == 0.0
    assert analysis.rtt_samples == [pytest.approx(0.05),
                                    pytest.approx(0.06)]
    assert analysis.mean_rtt == pytest.approx(0.055)


def test_retransmission_detected_and_counted():
    records = [
        data(0.0, 1),
        data(0.5, 1),  # same sequence again: a retransmission
        ack(0.6, 1001),
    ]
    analysis = analyze_flow(records, S)
    assert analysis.data_packets_sent == 2
    assert analysis.retransmitted_packets == 1
    assert analysis.loss_rate == pytest.approx(0.5)


def test_karn_excludes_retransmitted_ranges_from_rtt():
    records = [
        data(0.0, 1),
        data(0.5, 1),
        ack(0.6, 1001),  # matches the retransmission; must not sample
        data(0.7, 1001),
        ack(0.75, 2001),
    ]
    analysis = analyze_flow(records, S)
    assert analysis.rtt_samples == [pytest.approx(0.05)]


def test_cumulative_ack_covers_multiple_packets():
    records = [
        data(0.0, 1), data(0.001, 1001), data(0.002, 2001),
        ack(0.06, 3001),
    ]
    analysis = analyze_flow(records, S)
    assert len(analysis.rtt_samples) == 3
    assert analysis.rtt_samples[0] == pytest.approx(0.06)
    assert analysis.rtt_samples[2] == pytest.approx(0.058)


def test_ack_below_end_seq_does_not_sample():
    records = [data(0.0, 1, payload=1000), ack(0.05, 500)]
    analysis = analyze_flow(records, S)
    assert analysis.rtt_samples == []


def test_handshake_rtt_from_syn_exchange():
    records = [
        rec(0.0, "send", S, C, syn=True),
        rec(0.04, "recv", C, S, syn=True, ack_flag=True, ack=1,
            src_port=1000, dst_port=80),
    ]
    analysis = analyze_flow(records, S)
    assert analysis.handshake_rtt == pytest.approx(0.04)


def test_payload_bytes_count_first_transmissions_only():
    records = [data(0.0, 1), data(0.5, 1), ack(0.6, 1001)]
    analysis = analyze_flow(records, S)
    assert analysis.payload_bytes == 1000


def test_throughput_and_duration():
    records = [data(0.0, 1), data(1.0, 1001), ack(2.0, 2001)]
    analysis = analyze_flow(records, S)
    assert analysis.duration == pytest.approx(2.0)
    assert analysis.throughput_bps == pytest.approx(2000 * 8 / 2.0)


def test_empty_records():
    analysis = analyze_flow([], S)
    assert analysis.data_packets_sent == 0
    assert analysis.loss_rate == 0.0
    assert analysis.mean_rtt == 0.0
    assert analysis.throughput_bps == 0.0

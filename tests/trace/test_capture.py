"""Tests for the packet capture layer."""

from repro.netsim.packet import Packet
from repro.trace.capture import PacketCapture
from repro.tcp.segment import Flags, Segment

from tests.conftest import build_mininet


class Sink:
    def handle_packet(self, packet):
        pass


def send(net, payload=100, flags=None):
    segment = Segment(src_port=1000, dst_port=80, payload_len=payload,
                      flags=flags or Flags())
    net.client.send(Packet("client.wifi", "server.eth0", segment))


def test_capture_records_sends_and_receives():
    net = build_mininet()
    client_cap = PacketCapture(net.client)
    server_cap = PacketCapture(net.server)
    net.server.register_endpoint(("server.eth0", 80, "client.wifi", 1000),
                                 Sink())
    send(net)
    net.run()
    assert [r.direction for r in client_cap.records] == ["send"]
    assert [r.direction for r in server_cap.records] == ["recv"]
    assert client_cap.records[0].packet_id == \
        server_cap.records[0].packet_id


def test_records_flatten_header_fields():
    net = build_mininet()
    capture = PacketCapture(net.client)
    send(net, payload=123, flags=Flags(syn=True))
    net.run()
    record = capture.records[0]
    assert record.src == "client.wifi"
    assert record.dst == "server.eth0"
    assert record.payload_len == 123
    assert record.syn and not record.fin
    assert record.end_seq == 124  # payload + SYN


def test_flow_key_is_direction_agnostic():
    net = build_mininet()
    capture = PacketCapture(net.client)
    send(net)
    net.run()
    record = capture.records[0]
    key = record.flow_key
    assert key == ((("client.wifi"), 1000), (("server.eth0"), 80))


def test_detach_stops_recording():
    net = build_mininet()
    capture = PacketCapture(net.client)
    send(net)
    capture.detach()
    send(net)
    net.run()
    assert len(capture) == 1


def test_iteration_and_direction_filters():
    net = build_mininet()
    capture = PacketCapture(net.client)
    send(net)
    send(net)
    net.run()
    assert len(list(capture)) == 2
    assert len(list(capture.sent())) == 2
    assert len(list(capture.received())) == 0

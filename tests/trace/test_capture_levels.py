"""Tests for the levelled capture: what each fidelity keeps, what it
refuses to serve, and the streamed-vs-batch analysis equality."""

import pytest

from repro.core.options import DssMapping, MptcpOptions
from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement
from repro.netsim.packet import Packet
from repro.tcp.segment import Flags, Segment
from repro.trace.capture import CaptureLevel, PacketCapture

from tests.conftest import build_mininet

KB = 1024


def send(net, payload=100, flags=None, options=None):
    segment = Segment(src_port=1000, dst_port=80, payload_len=payload,
                      flags=flags or Flags(), options=options)
    net.client.send(Packet("client.wifi", "server.eth0", segment))


# ----------------------------------------------------------------------
# Level selection and coercion
# ----------------------------------------------------------------------

def test_coerce_accepts_strings_and_members():
    assert CaptureLevel.coerce("full") is CaptureLevel.FULL
    assert CaptureLevel.coerce("headers") is CaptureLevel.HEADERS
    assert CaptureLevel.coerce("metrics-only") is CaptureLevel.METRICS_ONLY
    assert CaptureLevel.coerce(CaptureLevel.FULL) is CaptureLevel.FULL


def test_coerce_rejects_unknown_level():
    with pytest.raises(ValueError, match="unknown capture level"):
        CaptureLevel.coerce("verbose")


# ----------------------------------------------------------------------
# What each level keeps
# ----------------------------------------------------------------------

def test_metrics_only_keeps_no_records():
    net = build_mininet()
    capture = PacketCapture(net.client, level="metrics-only")
    send(net)
    net.run()
    assert capture.packets_seen == 1
    with pytest.raises(RuntimeError, match="no per-packet records"):
        capture.records
    with pytest.raises(RuntimeError, match="no per-packet records"):
        list(capture.sent())


def test_flow_analyses_requires_metrics_only():
    net = build_mininet()
    capture = PacketCapture(net.client, level="full")
    with pytest.raises(RuntimeError, match="requires capture level"):
        capture.flow_analyses()


def test_headers_level_skips_option_introspection():
    options = MptcpOptions(mp_capable=True,
                           dss=DssMapping(dsn=5, ssn=0, length=100),
                           data_ack=7)
    net = build_mininet()
    full = PacketCapture(net.client, level="full")
    headers = PacketCapture(net.client, level="headers")
    send(net, options=options)
    net.run()
    full_record = full.records[0]
    assert full_record.dsn == 5
    assert full_record.dss_len == 100
    assert full_record.data_ack == 7
    assert full_record.mp_capable
    headers_record = headers.records[0]
    assert headers_record.dsn is None
    assert headers_record.dss_len == 0
    assert headers_record.data_ack is None
    assert not headers_record.mp_capable
    # Header fields are identical between the two levels.
    assert headers_record.seq == full_record.seq
    assert headers_record.payload_len == full_record.payload_len
    assert headers_record.window == full_record.window


def test_metrics_only_summary_tracks_syn_and_data():
    net = build_mininet()
    capture = PacketCapture(net.client, level="metrics-only")
    send(net, payload=0, flags=Flags(syn=True))
    net.run()
    assert capture.summary.first_syn_sent is not None
    assert capture.summary.last_data_recv is None


# ----------------------------------------------------------------------
# Streamed analyses == batch analyses (the metrics-only contract)
# ----------------------------------------------------------------------

def _run(level):
    spec = FlowSpec.mptcp(carrier="att", controller="coupled")
    return Measurement(spec, 256 * KB, seed=11,
                       capture_level=level).run()


def test_streamed_metrics_match_batch_analysis():
    """A metrics-only run must produce the same ConnectionMetrics a
    full capture plus batch analysis does, field for field."""
    streamed = _run("metrics-only")
    batch = _run("full")
    assert streamed.completed and batch.completed
    assert streamed.download_time == batch.download_time
    a, b = streamed.metrics, batch.metrics
    assert a.download_time == b.download_time
    assert a.bytes_received == b.bytes_received
    assert a.cellular_fraction == b.cellular_fraction
    assert a.ofo_delays == b.ofo_delays
    assert a.per_path.keys() == b.per_path.keys()
    for path in a.per_path:
        streamed_flow = a.per_path[path]
        batch_flow = b.per_path[path]
        assert streamed_flow.local == batch_flow.local
        assert streamed_flow.remote == batch_flow.remote
        assert streamed_flow.data_packets_sent == \
            batch_flow.data_packets_sent
        assert streamed_flow.retransmitted_packets == \
            batch_flow.retransmitted_packets
        assert streamed_flow.payload_bytes == batch_flow.payload_bytes
        assert streamed_flow.rtt_samples == batch_flow.rtt_samples
        assert streamed_flow.first_packet_time == \
            batch_flow.first_packet_time
        assert streamed_flow.last_packet_time == \
            batch_flow.last_packet_time
        assert streamed_flow.handshake_rtt == batch_flow.handshake_rtt


def test_headers_level_supports_connection_metrics():
    """Headers-level captures feed the same metric roll-up (they keep
    records, just without MPTCP options)."""
    full = _run("full")
    headers = _run("headers")
    assert headers.download_time == full.download_time
    assert headers.metrics.cellular_fraction == \
        full.metrics.cellular_fraction
    for path, analysis in full.metrics.per_path.items():
        other = headers.metrics.per_path[path]
        assert other.rtt_samples == analysis.rtt_samples
        assert other.loss_rate == analysis.loss_rate

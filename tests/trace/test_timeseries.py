"""Tests for the time-series probe."""

import pytest

from repro.sim.engine import Simulator
from repro.trace.timeseries import Series, TimeSeriesProbe

from tests.conftest import build_mininet, start_transfer


def test_probe_samples_on_period():
    sim = Simulator()
    clock = {"value": 0.0}
    probe = TimeSeriesProbe(sim, period=0.5)
    probe.track("v", lambda: clock["value"])
    sim.schedule(1.2, lambda: clock.__setitem__("value", 7.0))
    probe.start()
    sim.schedule(3.0, probe.stop)
    sim.run(until=5.0)
    series = probe.series["v"]
    assert series.times[:4] == [0.0, 0.5, 1.0, 1.5]
    assert series.at(1.0) == 0.0
    assert series.at(1.5) == 7.0
    assert series.maximum() == 7.0


def test_probe_stops_cleanly():
    sim = Simulator()
    probe = TimeSeriesProbe(sim, period=0.1)
    probe.track("x", lambda: 1.0)
    probe.start()
    sim.schedule(0.35, probe.stop)
    sim.run(until=10.0)
    assert len(probe.series["x"]) == 4  # t = 0.0, 0.1, 0.2, 0.3
    assert sim.now == 10.0


def test_duplicate_name_rejected():
    probe = TimeSeriesProbe(Simulator())
    probe.track("x", lambda: 0.0)
    with pytest.raises(ValueError):
        probe.track("x", lambda: 1.0)


def test_invalid_period_rejected():
    with pytest.raises(ValueError):
        TimeSeriesProbe(Simulator(), period=0.0)


def test_to_rows_aligns_series():
    sim = Simulator()
    probe = TimeSeriesProbe(sim, period=1.0)
    probe.track("a", lambda: 1.0).track("b", lambda: 2.0)
    probe.start()
    sim.schedule(2.5, probe.stop)
    sim.run(until=5.0)
    headers, rows = probe.to_rows()
    assert headers == ["time", "a", "b"]
    assert rows == [[0.0, 1.0, 2.0], [1.0, 1.0, 2.0], [2.0, 1.0, 2.0]]


def test_sparkline_shape():
    series_probe = TimeSeriesProbe(Simulator(), period=1.0)
    series_probe.series["x"] = Series("x", times=[0, 1, 2],
                                      values=[0.0, 5.0, 10.0])
    series_probe._getters["x"] = lambda: 0.0
    line = series_probe.sparkline("x")
    assert line.startswith("x: [")
    assert "min=0" in line and "max=10" in line


def test_sparkline_empty():
    probe = TimeSeriesProbe(Simulator())
    probe.track("x", lambda: 0.0)
    assert "(no samples)" in probe.sparkline("x")


def test_cwnd_trajectory_shows_slow_start():
    """Instrument a real transfer: cwnd must rise from IW toward
    ssthresh during the opening seconds."""
    net = build_mininet(rate_bps=50e6, buffer_bytes=10 ** 7)
    harness = start_transfer(net, size=2_000_000)
    probe = TimeSeriesProbe(net.sim, period=0.02)
    probe.track("cwnd", lambda: (harness.server_ep.cwnd
                                 if harness.server_ep else 0.0))
    probe.start()
    net.run(until=2.0)
    series = probe.series["cwnd"]
    assert series.maximum() > 10 * 1448  # grew past the initial window
    early = series.at(0.1) or 0.0
    late = series.at(1.5) or 0.0
    assert late >= early

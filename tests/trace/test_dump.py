"""Tests for the tcpdump/tcptrace-style text rendering."""

from repro.core.options import DssMapping, MptcpOptions
from repro.netsim.packet import Packet
from repro.tcp.segment import Flags, Segment
from repro.trace.analyzer import FlowAnalysis
from repro.trace.capture import PacketRecord
from repro.trace.dump import dump, flow_summary, format_record


class FakeCapture:
    def __init__(self, records):
        self.records = records


def rec(time=1.0, payload=100, syn=False, ack=True, options=None):
    segment = Segment(src_port=4000, dst_port=8080, seq=1, ack=55,
                      payload_len=payload,
                      flags=Flags(syn=syn, ack=ack), window=8192,
                      options=options)
    return PacketRecord(time, "send",
                        Packet("client.wifi", "server.eth0", segment))


def test_format_record_fields():
    line = format_record(rec())
    assert "client.wifi:4000 -> server.eth0:8080" in line
    assert "seq 1:101" in line
    assert "ack 55" in line
    assert "win 8192" in line
    assert "length 100" in line


def test_format_record_flags():
    assert "[S.]" in format_record(rec(syn=True))
    assert "[.]" in format_record(rec())


def test_format_record_mptcp_options():
    options = MptcpOptions(dss=DssMapping(dsn=500, ssn=1, length=100),
                           data_ack=321)
    line = format_record(rec(options=options))
    assert "dsn 500:600" in line
    assert "dack 321" in line


def test_dump_limit_and_filter():
    records = [rec(time=float(i), payload=0 if i % 2 else 100)
               for i in range(10)]
    text = dump(FakeCapture(records), limit=3)
    assert text.count("\n") == 3  # 3 lines + truncation marker
    assert "records total" in text
    data_text = dump(FakeCapture(records), data_only=True)
    assert data_text.count("length 100") == 5
    assert "length 0" not in data_text


def test_flow_summary_block():
    analysis = FlowAnalysis(local=("server.eth0", 8080),
                            remote=("client.wifi", 4000))
    analysis.data_packets_sent = 10
    analysis.retransmitted_packets = 1
    analysis.payload_bytes = 9000
    analysis.rtt_samples = [0.02, 0.04]
    analysis.handshake_rtt = 0.021
    analysis.first_packet_time = 0.0
    analysis.last_packet_time = 2.0
    text = flow_summary(analysis)
    assert "data packets sent:       10" in text
    assert "10.000%" in text
    assert "20.0 / 30.0 / 40.0" in text
    assert "handshake RTT (ms):      21.0" in text
    assert "0.04 Mbit/s" in text


def test_flow_summary_without_samples():
    analysis = FlowAnalysis(local=("a", 1), remote=("b", 2))
    text = flow_summary(analysis)
    assert "RTT samples:             0" in text
    assert "min/avg/max" not in text

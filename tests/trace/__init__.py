"""Test package."""

"""Tests for named random streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_derive_seed_depends_on_both_inputs():
    assert derive_seed(1, "a") != derive_seed(2, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_derive_seed_is_stable_across_runs():
    # Pin a value: replays of old experiments must keep their draws.
    assert derive_seed(0, "wifi") == derive_seed(0, "wifi")
    assert 0 <= derive_seed(0, "wifi") < 2 ** 64


def test_same_name_returns_same_stream():
    registry = RngRegistry(7)
    assert registry.stream("x") is registry.stream("x")


def test_streams_are_independent_of_creation_order():
    first = RngRegistry(7)
    a_then_b = (first.stream("a").random(), first.stream("b").random())
    second = RngRegistry(7)
    b_then_a = (second.stream("b").random(), second.stream("a").random())
    assert a_then_b[0] == b_then_a[1]
    assert a_then_b[1] == b_then_a[0]


def test_draws_on_one_stream_do_not_affect_another():
    registry = RngRegistry(3)
    control = RngRegistry(3).stream("b").random()
    for _ in range(100):
        registry.stream("a").random()
    assert registry.stream("b").random() == control


def test_same_root_seed_replays_identically():
    draws1 = [RngRegistry(11).stream("s").random() for _ in range(1)]
    draws2 = [RngRegistry(11).stream("s").random() for _ in range(1)]
    assert draws1 == draws2


def test_different_root_seeds_differ():
    a = RngRegistry(1).stream("s").random()
    b = RngRegistry(2).stream("s").random()
    assert a != b


def test_fork_creates_disjoint_namespace():
    registry = RngRegistry(5)
    child = registry.fork("run-1")
    assert child.root_seed != registry.root_seed
    assert child.stream("x").random() != registry.stream("x").random()


def test_fork_is_deterministic():
    a = RngRegistry(5).fork("run-1").stream("x").random()
    b = RngRegistry(5).fork("run-1").stream("x").random()
    assert a == b

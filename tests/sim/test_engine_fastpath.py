"""Tests for the fast event engine: arg-carrying scheduling, the
anonymous post() path, reschedule(), the event pool, heap compaction,
and the O(1) pending() count under RTO-style timer churn."""

import pytest

from repro.sim.engine import NO_ARG, Simulator, SimulationError


# ----------------------------------------------------------------------
# Arg-carrying and anonymous scheduling
# ----------------------------------------------------------------------

def test_schedule_with_arg_passes_it_through():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "payload")
    sim.run()
    assert seen == ["payload"]


def test_post_fires_callback_with_and_without_arg():
    sim = Simulator()
    seen = []
    sim.post(1.0, seen.append, "a")
    sim.post(2.0, lambda: seen.append("bare"))
    sim.post_at(3.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "bare", "b"]


def test_post_and_schedule_interleave_in_seq_order():
    """Every primitive consumes one sequence number, so events at the
    same instant fire in scheduling order regardless of primitive."""
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.post(1.0, seen.append, 2)
    sim.schedule_at(1.0, seen.append, 3)
    sim.post_at(1.0, seen.append, 4)
    sim.run()
    assert seen == [1, 2, 3, 4]


def test_post_rejects_negative_delay_and_past_time():
    sim = Simulator()
    sim.post(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.post(-0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.post_at(0.5, lambda: None)


def test_no_arg_sentinel_is_exported():
    assert repr(NO_ARG) == "<no-arg>"


# ----------------------------------------------------------------------
# reschedule()
# ----------------------------------------------------------------------

def test_reschedule_moves_event_and_preserves_handle():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, seen.append, "late")
    sim.schedule(2.0, seen.append, "middle")
    assert sim.reschedule(event, 5.0) is event
    sim.run()
    assert seen == ["middle", "late"]
    assert event.cancelled  # fired events read as dead


def test_reschedule_matches_cancel_plus_schedule_fifo():
    """A rescheduled event takes a fresh sequence number, so among
    equal timestamps it fires exactly where a cancel+schedule would."""

    def run_variant(use_reschedule):
        sim = Simulator()
        seen = []
        timer = sim.schedule(5.0, seen.append, "timer")
        sim.schedule(3.0, seen.append, "before")

        def reset():
            nonlocal timer
            if use_reschedule:
                sim.reschedule(timer, 2.0)  # now=1 -> fires at t=3
            else:
                timer.cancel()
                timer = sim.schedule(2.0, seen.append, "timer")

        sim.schedule(1.0, reset)
        sim.schedule(3.0, seen.append, "after")
        sim.run()
        return seen

    # The reset at t=1 hands the timer the *next* sequence number, so
    # it fires after both t=3 events scheduled earlier -- in both
    # variants identically.
    assert run_variant(True) == run_variant(False) \
        == ["before", "after", "timer"]


def test_reschedule_rejects_dead_or_foreign_events():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    with pytest.raises(SimulationError):
        sim.reschedule(event, 1.0)
    other = Simulator()
    pending = other.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.reschedule(pending, 1.0)
    live = sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.reschedule(live, -1.0)


def test_rescheduled_event_leaves_no_tombstone():
    """reschedule() re-keys the existing heap entry instead of
    cancelling it, so the heap does not grow with churn."""
    sim = Simulator()
    state = {"count": 0, "timer": None}

    def on_tick():
        state["count"] += 1
        if state["count"] < 1000:
            sim.reschedule(state["timer"], 60.0)
            sim.post(0.001, on_tick)

    state["timer"] = sim.schedule(60.0, lambda: None)
    sim.post(0.001, on_tick)
    sim.run(until=30.0)
    assert state["count"] == 1000
    assert sim.peak_heap <= 4


def test_reschedule_backward_fires_at_the_earlier_time():
    """Moving a timer *earlier* than its current heap key must take
    effect immediately -- the regression here was an RTO timer re-armed
    with a shrinking estimate firing at the stale, later key."""
    sim = Simulator()
    seen = []
    timer = sim.schedule(10.0, lambda: seen.append(("rto", sim.now)))
    sim.schedule(1.0, lambda: sim.reschedule(timer, 2.0))
    sim.schedule(5.0, lambda: seen.append(("probe", sim.now)))
    sim.run()
    assert seen == [("rto", 3.0), ("probe", 5.0)]


def test_reschedule_backward_matches_cancel_plus_schedule():
    """Backward moves, like forward ones, must order identically to
    cancel+schedule among equal timestamps."""

    def run_variant(use_reschedule):
        sim = Simulator()
        seen = []
        timer = sim.schedule(9.0, seen.append, "timer")
        sim.schedule(3.0, seen.append, "before")

        def reset():
            nonlocal timer
            if use_reschedule:
                sim.reschedule(timer, 2.0)  # now=1 -> fires at t=3
            else:
                timer.cancel()
                timer = sim.schedule(2.0, seen.append, "timer")

        sim.schedule(1.0, reset)
        sim.schedule(3.0, seen.append, "after")
        sim.run()
        return seen

    assert run_variant(True) == run_variant(False) \
        == ["before", "after", "timer"]


def test_reschedule_backward_then_forward_and_multi_hop():
    """A chain of moves in both directions lands on the final time, and
    every abandoned ghost entry is drained from the heap."""
    sim = Simulator()
    seen = []
    timer = sim.schedule(8.0, lambda: seen.append(sim.now))
    # back (8 -> 3), forward again (3 -> 6), back again (6 -> 4).
    sim.schedule(1.0, lambda: sim.reschedule(timer, 2.0))
    sim.schedule(2.0, lambda: sim.reschedule(timer, 4.0))
    sim.schedule(2.5, lambda: sim.reschedule(timer, 1.5))
    sim.run()
    assert seen == [4.0]
    assert sim.heap_len == 0
    assert sim._stale == 0
    assert not sim._ghost_seqs


def test_cancel_after_backward_reschedule_no_double_release():
    """Cancelling an event whose old heap entry is still a ghost must
    release the event exactly once -- a double release would let two
    live timers share one pooled object."""
    sim = Simulator()
    seen = []
    timer = sim.schedule(10.0, seen.append, "dead")
    sim.reschedule(timer, 5.0)   # ghosts the t=10 entry
    timer.cancel()
    # Recycle the pool hard: if the object were released twice, two of
    # these timers would alias one Event and misfire.
    for index in range(8):
        sim.schedule(1.0 + index, seen.append, index)
    sim.run()
    assert seen == list(range(8))
    assert sim.heap_len == 0 and sim._stale == 0
    assert not sim._ghost_seqs


def test_compaction_drops_ghost_entries():
    """Heap compaction triggered by cancel churn must also drain ghost
    entries without touching the events they once carried."""
    sim = Simulator()
    keepers = []
    timer = sim.schedule(500.0, lambda: keepers.append(sim.now))
    sim.reschedule(timer, 400.0)  # leaves one ghost at t=500
    victims = [sim.schedule(100.0, lambda: None) for _ in range(300)]
    for victim in victims:
        victim.cancel()           # trips _compact()
    assert sim.heap_compactions >= 1
    assert not sim._ghost_seqs    # ghost swept during compaction
    assert sim.pending() == 1     # only the re-keyed timer is live
    assert sim.heap_len < 100     # tombstone pile was swept away
    sim.run()
    assert keepers == [400.0]
    assert sim.heap_len == 0 and sim._stale == 0


# ----------------------------------------------------------------------
# Event pool
# ----------------------------------------------------------------------

def test_pool_recycles_fired_events():
    sim = Simulator()
    for _ in range(50):
        sim.schedule(1.0, lambda: None)
    sim.run()
    first_batch_reuses = sim.pool_reuses
    for _ in range(50):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.pool_reuses > first_batch_reuses


def test_cancelled_event_never_fires_after_recycling():
    """A handle cancelled before its time must not fire even after its
    Event object has been recycled for an unrelated later event."""
    sim = Simulator()
    seen = []
    doomed = sim.schedule(5.0, seen.append, "doomed")
    doomed.cancel()
    # Force recycling: fire enough events that the pooled object backs
    # a new, live event before t=5.
    for index in range(10):
        sim.schedule(1.0 + index * 0.1, seen.append, index)
    sim.run()
    assert "doomed" not in seen
    assert seen == list(range(10))


def test_fired_handle_cancel_is_harmless_noop():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, seen.append, "x")
    sim.run()
    event.cancel()  # already fired: must not corrupt pool accounting
    sim.schedule(1.0, seen.append, "y")
    sim.run()
    assert seen == ["x", "y"]
    assert sim.pending() == 0


# ----------------------------------------------------------------------
# Heap compaction and O(1) pending()
# ----------------------------------------------------------------------

def test_compaction_drops_cancelled_entries():
    sim = Simulator()
    events = [sim.schedule(100.0, lambda: None) for _ in range(500)]
    assert sim.heap_len == 500
    for event in events:
        event.cancel()
    assert sim.heap_compactions >= 1
    assert sim.heap_len < 500
    assert sim.pending() == 0
    sim.run()
    assert sim.events_processed == 0


def test_cancelled_events_skipped_without_firing():
    sim = Simulator()
    seen = []
    events = [sim.schedule(1.0 + i * 0.001, seen.append, i)
              for i in range(100)]
    for event in events[::2]:
        event.cancel()
    sim.run()
    assert seen == list(range(1, 100, 2))
    assert sim.events_processed == 50


def test_pending_is_constant_time_and_exact_under_rto_churn():
    """The RTO pattern -- cancel + re-arm a far-out timer on every ACK
    -- must neither inflate pending() nor grow the heap unboundedly."""
    sim = Simulator()
    state = {"i": 0, "rto": None}

    def on_rto():
        pass

    def on_ack():
        if state["rto"] is not None:
            state["rto"].cancel()
        state["rto"] = sim.schedule(60.0, on_rto)
        state["i"] += 1
        if state["i"] < 5000:
            sim.post(0.0001, on_ack)

    sim.post(0.0001, on_ack)
    sim.run(until=10.0)
    # One live RTO timer remains; tombstones must have been compacted
    # away instead of accumulating 5000 entries.
    assert sim.pending() == 1
    assert sim.heap_len < 200
    assert sim.peak_heap < 200
    assert sim.heap_compactions > 0


def test_events_processed_counts_all_primitives():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.post(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    sim.reschedule(event, 3.0)
    cancelled = sim.schedule(4.0, lambda: None)
    cancelled.cancel()
    sim.run()
    assert sim.events_processed == 3
    assert sim.events_scheduled == 5  # reschedule books a new seq
    assert sim.events_posted == 1
    assert sim.pending() == 0

"""Tests for ``Simulator.post_batch``: one heap entry per burst, inline
draining during run(), step()/until semantics, revocation, and the
batch telemetry counters feeding ``--profile``."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_batch_fires_all_entries_at_their_times():
    sim = Simulator()
    seen = []
    times = [1.0, 1.5, 2.0]

    def record(tag):
        seen.append((sim.now, tag))

    sim.post_batch(times, record, ["a", "b", "c"])
    sim.run()
    assert seen == [(1.0, "a"), (1.5, "b"), (2.0, "c")]


def test_batch_occupies_one_heap_slot():
    sim = Simulator()
    sim.post_batch([float(t) for t in range(1, 101)],
                   lambda _: None, list(range(100)))
    assert len(sim._queue) == 1
    assert sim.pending() == 100
    sim.run()
    assert sim.events_processed == 100
    assert sim.pending() == 0


def test_batch_entries_share_one_sequence_number():
    """Ties against unrelated events resolve by when the burst was
    posted: earlier-posted events beat the batch at the same instant,
    later-posted events lose to *every* batch entry at that instant."""
    sim = Simulator()
    seen = []
    sim.post_at(1.0, seen.append, "before")
    sim.post_batch([1.0, 1.0], seen.append, ["b0", "b1"])
    sim.post_at(1.0, seen.append, "after")
    sim.run()
    assert seen == ["before", "b0", "b1", "after"]


def test_inline_drain_respects_interleaved_events():
    """A non-batch event landing between two batch times must fire in
    between -- the drain checks the heap head before every entry."""
    sim = Simulator()
    seen = []
    sim.post_batch([1.0, 2.0, 3.0], seen.append, ["b1", "b2", "b3"])
    sim.post_at(1.5, seen.append, "mid")
    sim.post_at(2.5, seen.append, "mid2")
    sim.run()
    assert seen == ["b1", "mid", "b2", "mid2", "b3"]
    assert sim.batch_inline < 3, "interleaved events break the drain"


def test_step_never_drains_inline():
    """step() keeps single-event semantics: each call fires exactly one
    batch entry and pushes the remainder back."""
    sim = Simulator()
    seen = []
    sim.post_batch([1.0, 1.0, 1.0], seen.append, ["a", "b", "c"])
    assert sim.step() and seen == ["a"]
    assert sim.step() and seen == ["a", "b"]
    assert sim.step() and seen == ["a", "b", "c"]
    assert not sim.step()
    assert sim.batch_inline == 0


def test_run_until_splits_a_batch():
    """Entries beyond ``until`` stay pending; a later run() fires them
    at unchanged times."""
    sim = Simulator()
    seen = []

    def record(tag):
        seen.append((sim.now, tag))

    sim.post_batch([1.0, 2.0, 3.0], record, ["a", "b", "c"])
    sim.run(until=2.0)
    assert seen == [(1.0, "a"), (2.0, "b")]
    assert sim.now == 2.0
    sim.run()
    assert seen[-1] == (3.0, "c")


def test_revoke_from_suppresses_the_tail():
    sim = Simulator()
    seen = []
    batch = sim.post_batch([1.0, 2.0, 3.0, 4.0], seen.append,
                           ["a", "b", "c", "d"])
    batch.revoke_from(2)
    sim.run()
    assert seen == ["a", "b"]


def test_callback_may_revoke_the_rest_of_its_own_batch():
    """The link-down case: a delivery callback tears the link down and
    revokes the not-yet-delivered suffix mid-drain."""
    sim = Simulator()
    seen = []
    holder = {}

    def deliver(tag):
        seen.append(tag)
        if tag == "b":
            holder["batch"].revoke_from(2)

    holder["batch"] = sim.post_batch([1.0, 1.0, 1.0, 1.0], deliver,
                                     ["a", "b", "c", "d"])
    sim.run()
    assert seen == ["a", "b"]


def test_post_batch_rejects_empty_and_past_times():
    sim = Simulator()
    sim.post_at(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.post_batch([], lambda _: None, [])
    with pytest.raises(SimulationError):
        sim.post_batch([0.5], lambda _: None, [None])


def test_batch_counters():
    sim = Simulator()
    sim.post_batch([1.0, 1.0, 1.0], lambda _: None, [0, 1, 2])
    sim.post_batch([2.0, 2.0], lambda _: None, [0, 1])
    sim.run()
    assert sim.batches_posted == 2
    assert sim.batch_entries == 5
    assert sim.batch_inline == 3, "2 + 1 entries drained without a pop"
    assert sim.events_processed == 5

"""Test package."""

"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator, SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, lambda name=name: fired.append(name))
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_zero_delay_event_runs_after_current_instant_events():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.schedule(1.0, lambda: fired.append("peer"))
    sim.run()
    assert fired == ["outer", "peer", "inner"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_bounded_runs_compose():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run(until=1.5)
    sim.run(until=2.5)
    assert fired == [1.0, 2.0]
    sim.run(until=10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_max_events_limits_processing():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_runs_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_step_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    assert sim.step() is False


def test_schedule_at_rejects_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_schedule_at_preserves_fifo_for_equal_times():
    """Absolute-time scheduling must not introduce float roundoff that
    scrambles equal-time ordering (regression: link FIFO delivery)."""
    sim = Simulator()
    fired = []

    def setup():
        # Schedule from different 'now's for the same absolute time.
        sim.schedule_at(5.0, lambda: fired.append("a"))
        sim.schedule(1.0, lambda: sim.schedule_at(
            5.0, lambda: fired.append("b")))
        sim.schedule(2.0, lambda: sim.schedule_at(
            5.0, lambda: fired.append("c")))

    setup()
    sim.run()
    assert fired == ["a", "b", "c"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule_at(
        5.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [5.0]


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, lambda: chain(n + 1))

    sim.schedule(1.0, lambda: chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 6.0


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_pending_counts_live_events():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    event.cancel()
    assert sim.pending() == 1


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4

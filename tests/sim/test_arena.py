"""Equivalence tests for the segment arena scoreboard.

``ArraySendScoreboard`` (numpy columns, searchsorted range walks) and
``PySendScoreboard`` (the legacy object-per-segment dict, kept for
``REPRO_SCALAR=1``) must be observationally identical: same aggregates
from every mutating call, same surviving segments, same retransmit
fronts.  A randomized driver feeds both the endpoint's full operation
vocabulary; dedicated tests force arena growth and compaction.
"""

import random

import pytest

from repro.sim.arena import (
    FLIGHT,
    LOST,
    SACKED,
    ArraySendScoreboard,
    PySendScoreboard,
    SegmentArena,
    make_scoreboard,
)


def snapshot(board):
    return [(int(sent.seq), int(sent.end_seq), int(sent.seq_space),
             bool(sent.fin), sent.dsn, float(sent.sent_at),
             int(sent.retransmits), int(sent.state),
             int(sent.rexmit_epoch))
            for sent in board.values()]


def drive(board, seed, operations=400):
    """Run a random op sequence; return every observable output."""
    rng = random.Random(seed)
    outputs = []
    next_seq = 1
    una = 1
    epoch = 0
    now = 0.0
    for _ in range(operations):
        now += rng.random() * 0.01
        roll = rng.random()
        if roll < 0.45 or not board:
            space = rng.choice([1448, 1448, 512, 1])
            fin = space == 1 and rng.random() < 0.5
            dsn = next_seq + 10_000 if rng.random() < 0.8 else None
            sent = board.append(next_seq, space, 0 if fin else space,
                                fin=fin, dsn=dsn, sent_at=now)
            outputs.append(("append", sent.seq, sent.end_seq))
            next_seq += space
        elif roll < 0.62:
            start = rng.randrange(una, next_seq + 1)
            end = rng.randrange(start, next_seq + 1449)
            outputs.append(("sack", board.sack(start, end)))
        elif roll < 0.72:
            threshold = rng.randrange(una, next_seq + 1449)
            outputs.append(("mark_losses",
                            board.mark_losses(threshold, epoch)))
        elif roll < 0.87:
            ack = rng.randrange(una, next_seq + 1)
            outputs.append(("advance", board.advance_una(ack)))
            una = max(una, ack)
        elif roll < 0.93:
            front = board.front_unsacked()
            outputs.append(("front", None if front is None
                            else (front.seq, front.state)))
            if front is not None and front.state == LOST:
                front.mark_retransmitted(epoch)
        elif roll < 0.97:
            lost = board.find_lost(epoch)
            outputs.append(("lost", None if lost is None
                            else lost.seq))
            if lost is not None:
                lost.mark_retransmitted(epoch)
        else:
            outputs.append(("rto", board.mark_all_lost()))
            epoch += 1
    outputs.append(("final", len(board), bool(board), snapshot(board)))
    return outputs


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 2013, 31337])
def test_array_scoreboard_matches_legacy(seed):
    assert drive(ArraySendScoreboard(), seed) == \
        drive(PySendScoreboard(), seed)


def test_growth_past_initial_capacity():
    """Appending beyond the initial arena capacity must preserve every
    column; equivalence is checked against the legacy board."""
    array, legacy = ArraySendScoreboard(), PySendScoreboard()
    for board in (array, legacy):
        for index in range(1000):
            board.append(1 + index * 1448, 1448, 1448, fin=False,
                         dsn=50_000 + index, sent_at=0.001 * index)
    assert array._arena.capacity >= 1000
    assert snapshot(array) == snapshot(legacy)


def test_compaction_recycles_retired_slots():
    """A long steady-state window (append at tail, ack at head) must
    compact in place instead of growing without bound."""
    board = ArraySendScoreboard()
    seq = 1
    for round_index in range(40):
        for _ in range(100):
            board.append(seq, 1448, 1448, fin=False, dsn=None,
                         sent_at=0.0)
            seq += 1448
        board.advance_una(seq - 10 * 1448)  # keep 10 in flight
    assert len(board) == 10
    assert board._arena.capacity < 1024, \
        "a 10-segment window must not grow a 4000-append arena"
    assert [sent.seq for sent in board.values()] == \
        [seq - (10 - i) * 1448 for i in range(10)]


def test_views_are_live_after_mutation():
    """Captured views read through to the columns -- the endpoint-
    internals tests capture values() before mutating via SACK."""
    board = ArraySendScoreboard()
    board.append(1, 1000, 1000, fin=False, dsn=None, sent_at=0.5)
    board.append(1001, 1000, 1000, fin=False, dsn=None, sent_at=0.6)
    first, second = board.values()
    assert (first.state, second.state) == (FLIGHT, FLIGHT)
    board.sack(1001, 2001)
    assert (first.state, second.state) == (FLIGHT, SACKED)
    board.mark_losses(3001, epoch=0)
    assert first.state == LOST
    first.mark_retransmitted(epoch=0)
    assert first.retransmits == 1 and first.rexmit_epoch == 0


def test_arena_peak_reaches_the_simulator():
    class FakeSim:
        arena_peak = 0

    sim = FakeSim()
    board = ArraySendScoreboard(sim)
    for index in range(5):
        board.append(1 + index * 100, 100, 100, fin=False, dsn=None,
                     sent_at=0.0)
    board.advance_una(501)
    board.append(501, 100, 100, fin=False, dsn=None, sent_at=0.0)
    assert sim.arena_peak == 5


def test_make_scoreboard_honours_scalar_mode(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR", raising=False)
    assert isinstance(make_scoreboard(), ArraySendScoreboard)
    monkeypatch.setenv("REPRO_SCALAR", "1")
    assert isinstance(make_scoreboard(), PySendScoreboard)


def test_rtt_sample_comes_from_last_fresh_segment():
    """Karn: the RTT sample is the transmit time of the *last* retired
    never-retransmitted range; retransmitted ranges are skipped."""
    for board in (ArraySendScoreboard(), PySendScoreboard()):
        board.append(1, 100, 100, fin=False, dsn=None, sent_at=1.0)
        second = board.append(101, 100, 100, fin=False, dsn=None,
                              sent_at=2.0)
        board.append(201, 100, 100, fin=False, dsn=None, sent_at=3.0)
        second.mark_retransmitted(epoch=0)
        _, rtt_sent_at, _, _ = board.advance_una(201)
        assert rtt_sent_at == 1.0
        _, rtt_sent_at, _, _ = board.advance_una(301)
        assert rtt_sent_at == 3.0


def test_arena_len_tracks_live_region():
    arena = SegmentArena()
    assert len(arena) == 0
    arena.append(1, 100, 100, False, None, 0.0)
    arena.append(101, 100, 100, False, None, 0.0)
    assert len(arena) == 2
    arena.head = 1
    assert len(arena) == 1

"""The shared-world kernel bound to a real Testbed + Measurement."""

import json
from pathlib import Path

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement
from repro.experiments.storage import result_from_dict, result_to_dict
from repro.sim.rng import derive_seed
from repro.testbed import CLIENT_WIFI, Testbed, TestbedConfig
from repro.wireless.profiles import TimeOfDay
from repro.world import WORLDS, World, WorldSpec, build_world

KB = 1024
MB = 1024 * KB

BENCH_PERF = Path(__file__).resolve().parents[2] / "benchmarks" / \
    "output" / "BENCH_PERF.json"


# ----------------------------------------------------------------------
# WorldSpec / registry
# ----------------------------------------------------------------------

def test_world_spec_validation():
    with pytest.raises(ValueError):
        WorldSpec(arrival="sometimes")
    with pytest.raises(ValueError):
        WorldSpec(arrival="poisson", rate=0.0)
    with pytest.raises(ValueError):
        WorldSpec(arrival="closed", users=0)
    with pytest.raises(ValueError):
        WorldSpec(paths=("ethernet",))
    with pytest.raises(ValueError):
        WorldSpec(sizes="bogus-dist")


def test_registry_presets_are_valid_and_priced():
    for name, spec in WORLDS.items():
        assert spec.expected_concurrency >= 0.0, name
    assert WORLDS["bg-none"].expected_concurrency == 0.0
    assert WORLDS["closed-32"].expected_concurrency == 32.0


def test_flowspec_rejects_unknown_world():
    with pytest.raises(ValueError):
        FlowSpec.mptcp(carrier="att", world="bg-imaginary")


def test_world_identity_gating():
    """Defaulted world stays out of the identity (pre-existing seeds
    and journal keys must not move); a named world is included."""
    plain = FlowSpec.mptcp(carrier="att")
    assert "world" not in plain.identity
    worldly = FlowSpec.mptcp(carrier="att", world="bg-light")
    assert "world=bg-light" in worldly.identity
    assert plain.identity != worldly.identity


def test_world_cost_weight_monotone():
    """Satellite: CostModel pricing -- heavier worlds cost more, and
    any world costs more than the stand-alone cell, so LJF dispatch
    fronts the expensive many-flow cells in a mixed plan."""
    plain = FlowSpec.mptcp(carrier="att")
    light = FlowSpec.mptcp(carrier="att", world="bg-light")
    heavy = FlowSpec.mptcp(carrier="att", world="bg-heavy")
    closed = FlowSpec.mptcp(carrier="att", world="closed-32")
    assert plain.cost_weight < light.cost_weight
    assert light.cost_weight < heavy.cost_weight
    assert heavy.cost_weight < closed.cost_weight
    sp = FlowSpec.single_path("wifi", world="bg-light")
    assert sp.cost_weight > FlowSpec.single_path("wifi").cost_weight


# ----------------------------------------------------------------------
# World on a Testbed
# ----------------------------------------------------------------------

def test_world_binds_access_links():
    testbed = Testbed(TestbedConfig(seed=5))
    world = World(testbed, WORLDS["bg-heavy"])
    names = set(world.fluid.bottlenecks)
    assert names == {f"{CLIENT_WIFI}:down",
                     f"{testbed.cellular_addr}:down"}
    # Capacities mirror the nominal downlink rates.
    _, wifi_down = testbed.network.links_for(CLIENT_WIFI)
    assert world.fluid.bottlenecks[f"{CLIENT_WIFI}:down"] == \
        wifi_down.config.rate_bps


def test_bg_none_draws_no_rng_and_schedules_nothing():
    testbed = Testbed(TestbedConfig(seed=5))
    pending_before = testbed.sim.pending()
    scheduled_before = testbed.sim.events_scheduled
    world = build_world(testbed, "bg-none")
    world.attach_foreground([CLIENT_WIFI])
    world.start(stop_when=lambda: False)
    assert testbed.sim.pending() == pending_before
    assert testbed.sim.events_scheduled == scheduled_before


def test_measurement_with_background_slows_foreground():
    spec = FlowSpec.mptcp(carrier="att", controller="coupled")
    seed = 99
    plain = Measurement(spec, 2 * MB, seed=seed,
                        period=TimeOfDay.NIGHT).run()
    busy = Measurement(
        FlowSpec.mptcp(carrier="att", controller="coupled",
                       world="closed-8"),
        2 * MB, seed=seed, period=TimeOfDay.NIGHT).run()
    assert plain.completed and busy.completed
    assert busy.world is not None
    assert busy.world["peak_concurrent"] == 8
    assert busy.world["flows_completed"] > 0
    # Eight greedy background flows on the shared links must cost the
    # foreground real time.
    assert busy.download_time > plain.download_time * 1.02


def test_world_summary_survives_storage_round_trip():
    spec = FlowSpec.mptcp(carrier="att", world="closed-8")
    result = Measurement(spec, 256 * KB, seed=3,
                         period=TimeOfDay.NIGHT).run()
    clone = result_from_dict(json.loads(
        json.dumps(result_to_dict(result))))
    assert clone.world == result.world
    assert clone.spec == spec


def test_plain_result_round_trip_has_no_world():
    spec = FlowSpec.single_path("wifi")
    result = Measurement(spec, 64 * KB, seed=3,
                         period=TimeOfDay.NIGHT).run()
    assert result.world is None
    data = result_to_dict(result)
    assert data["world"] is None
    # Pre-world files lack the key entirely; both must deserialize.
    del data["world"]
    clone = result_from_dict(json.loads(json.dumps(data)))
    assert clone.world is None


# ----------------------------------------------------------------------
# The acceptance criterion: 1 foreground / 0 background == stand-alone
# ----------------------------------------------------------------------

def test_zero_background_world_reproduces_fig02_oracle():
    """A world with one packet-level flow and zero background flows
    must reproduce the committed single-flow fig02 oracle to the last
    bit: same seed, same download time as both the stand-alone run and
    the value pinned in BENCH_PERF.json."""
    plain_spec = FlowSpec.mptcp(carrier="att", controller="coupled")
    world_spec = FlowSpec.mptcp(carrier="att", controller="coupled",
                                world="bg-none")
    size = 2 * MB
    # The bench-perf campaign cell's exact seed (derived from the
    # *plain* identity -- the world field must not leak into it here,
    # because the point is byte-identity of the simulation itself).
    seed = derive_seed(2013, f"bench-perf:{plain_spec.identity}:{size}")
    plain = Measurement(plain_spec, size, seed=seed,
                        period=TimeOfDay.AFTERNOON).run()
    hosted = Measurement(world_spec, size, seed=seed,
                         period=TimeOfDay.AFTERNOON).run()
    assert plain.download_time == hosted.download_time
    assert hosted.world == {
        "flows_started": 0, "flows_completed": 0, "bg_bytes": 0,
        "bg_goodput_bps": 0.0, "peak_concurrent": 0, "mean_fct": 0.0,
        "jain": 1.0}
    oracle = json.loads(BENCH_PERF.read_text())["campaign"][
        "workloads"]["fig02-mp2-2MB"]["download_time"]
    assert hosted.download_time == oracle

"""World campaigns under the dispatch machinery: ``--jobs`` counts
cells (one world = one process), ``REPRO_JOBS`` caps the default pool,
and a fully cache-served campaign renders sane progress."""

import io

import pytest

from repro.cache import RunCache
from repro.experiments import parallel
from repro.experiments.report import csv_text
from repro.experiments.runner import Campaign
from repro.experiments.scenarios import (
    WORLD_LEVELS,
    world_campaign,
    world_fairness_rows,
)
from repro.obs.telemetry import ProgressRenderer
from repro.wireless.profiles import TimeOfDay

KB = 1024


def _tiny_world_campaign(**kwargs):
    return world_campaign(repetitions=1, periods=(TimeOfDay.NIGHT,),
                          base_seed=11, worlds=("bg-none", "closed-8"),
                          size=128 * KB, **kwargs)


def test_world_campaign_covers_all_levels():
    spec = world_campaign()
    worlds = {flow.world for flow in spec.specs}
    assert worlds == set(WORLD_LEVELS)
    # Every level pairs a single-path and a multipath foreground.
    assert len(spec.specs) == 2 * len(WORLD_LEVELS)


def test_world_campaign_serial_matches_parallel():
    """One world cell = one worker process; a pool of 2 must produce
    the bytes the serial path produces."""
    serial = Campaign(_tiny_world_campaign()).run()
    pooled = Campaign(_tiny_world_campaign(), jobs=2).run()
    assert csv_text(*world_fairness_rows(serial)) == \
        csv_text(*world_fairness_rows(pooled))


# ----------------------------------------------------------------------
# --jobs semantics (satellite: pool sizing for world campaigns)
# ----------------------------------------------------------------------

def test_default_jobs_honors_repro_jobs_cap(monkeypatch):
    monkeypatch.setattr(parallel.os, "sched_getaffinity",
                        lambda pid: set(range(16)), raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert parallel.default_jobs() == 16
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert parallel.default_jobs() == 4


def test_repro_jobs_cap_never_raises_the_default(monkeypatch):
    """The env var is a cap for memory-bound worlds, not a request
    for oversubscription."""
    monkeypatch.setattr(parallel.os, "sched_getaffinity",
                        lambda pid: {0, 1}, raising=False)
    monkeypatch.setenv("REPRO_JOBS", "64")
    assert parallel.default_jobs() == 2


@pytest.mark.parametrize("value", ["", "zero", "-3", "0"])
def test_repro_jobs_ignores_garbage_and_nonpositive(monkeypatch, value):
    monkeypatch.setattr(parallel.os, "sched_getaffinity",
                        lambda pid: set(range(8)), raising=False)
    monkeypatch.setenv("REPRO_JOBS", value)
    assert parallel.default_jobs() == 8


# ----------------------------------------------------------------------
# Warm-cache campaign + progress (satellite: ProgressRenderer)
# ----------------------------------------------------------------------

def test_cache_served_world_campaign_renders_done(tmp_path):
    """A world campaign replayed against a warm cache completes every
    cell without a single live run.  Wired to a ProgressRenderer the
    way the CLI wires it, the final snapshot must say 'done' -- not
    extrapolate an ETA from near-zero elapsed time."""
    root = tmp_path / "cache"
    cold = Campaign(_tiny_world_campaign(), cache=str(root)).run()
    assert all(result.completed for result in cold)

    warm_cache = RunCache(root)
    stream = io.StringIO()
    renderer = ProgressRenderer(str(tmp_path / "hb"), total=len(cold),
                                interval=60.0, stream=stream)

    def progress(index, count, result):
        renderer.note_done(index)

    warm = Campaign(_tiny_world_campaign(), cache=warm_cache,
                    progress=progress).run()
    renderer.stop()
    assert warm_cache.hits == len(cold)
    warm_cache.close()

    assert csv_text(*world_fairness_rows(warm)) == \
        csv_text(*world_fairness_rows(cold))
    output = stream.getvalue()
    assert f"[progress] {len(cold)}/{len(cold)} runs" in output
    assert "| done" in output
    assert "ETA" not in output

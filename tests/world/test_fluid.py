"""Property and unit tests for the fluid bandwidth-sharing kernel."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.world import (
    GREEDY,
    ClassKey,
    ClosedLoopUsers,
    FluidNetwork,
    PoissonArrivals,
    make_size_sampler,
    solve_max_min,
)

MBPS = 1e6

# ----------------------------------------------------------------------
# Max-min solver properties
# ----------------------------------------------------------------------

#: A random scenario: up to 4 bottlenecks, up to 8 classes routed over
#: a non-empty subset of them, each with a count and a demand (some
#: greedy, some capped).
_bottlenecks = st.lists(st.floats(0.5 * MBPS, 100 * MBPS),
                        min_size=1, max_size=4)


@st.composite
def scenarios(draw):
    capacities = {f"b{i}": c for i, c in enumerate(draw(_bottlenecks))}
    names = sorted(capacities)
    classes = draw(st.lists(
        st.tuples(
            st.lists(st.sampled_from(names), min_size=1, max_size=4,
                     unique=True),
            st.one_of(st.just(GREEDY),
                      st.floats(0.01 * MBPS, 50 * MBPS)),
            st.integers(1, 50)),
        min_size=1, max_size=8))
    demands = {}
    for route, desired, count in classes:
        key = ClassKey(route=tuple(route), desired_bw=desired)
        demands[key] = demands.get(key, 0) + count
    return capacities, demands


@settings(max_examples=200, deadline=None)
@given(scenarios())
def test_allocations_never_exceed_capacity(scenario):
    """Per bottleneck, summed shares stay within capacity (the core
    fluid invariant), and no class exceeds its own demand."""
    capacities, demands = scenario
    rates = solve_max_min(demands, capacities)
    for hop, capacity in capacities.items():
        allocated = sum(rate * demands[key]
                        for key, rate in rates.items()
                        if hop in key.route)
        assert allocated <= capacity * (1.0 + 1e-9)
    for key, rate in rates.items():
        assert rate >= 0.0
        if key.desired_bw < GREEDY:
            assert rate <= key.desired_bw * (1.0 + 1e-9)


@settings(max_examples=200, deadline=None)
@given(scenarios(), st.randoms(use_true_random=False))
def test_max_min_is_order_independent(scenario, shuffler):
    """The allocation must not depend on dict insertion order."""
    capacities, demands = scenario
    reference = solve_max_min(demands, capacities)
    items = list(demands.items())
    shuffler.shuffle(items)
    cap_items = list(capacities.items())
    shuffler.shuffle(cap_items)
    shuffled = solve_max_min(dict(items), dict(cap_items))
    assert shuffled == reference


@settings(max_examples=150, deadline=None)
@given(scenarios())
def test_greedy_share_is_max_min_fair(scenario):
    """No greedy class can be raised without lowering a class that
    already has an equal-or-smaller share (the max-min criterion):
    every greedy class must cross at least one saturated bottleneck
    where it holds a maximal share."""
    capacities, demands = scenario
    rates = solve_max_min(demands, capacities)
    for key, rate in rates.items():
        if key.desired_bw < GREEDY and \
                rate >= key.desired_bw * (1.0 - 1e-9):
            continue  # demand-limited: satisfied by definition
        bottlenecked = False
        for hop in key.route:
            allocated = sum(r * demands[k] for k, r in rates.items()
                            if hop in k.route)
            if allocated >= capacities[hop] * (1.0 - 1e-9):
                peers = [r for k, r in rates.items() if hop in k.route]
                if rate >= max(peers) * (1.0 - 1e-9):
                    bottlenecked = True
                    break
        assert bottlenecked, (key, rate, rates)


def test_simple_shares():
    """Hand-checked scenario: demands below and above fair level."""
    capacities = {"a": 10 * MBPS}
    demands = {
        ClassKey(("a",), desired_bw=1 * MBPS): 2,   # capped
        ClassKey(("a",)): 2,                        # greedy
    }
    rates = solve_max_min(demands, capacities)
    assert rates[ClassKey(("a",), desired_bw=1 * MBPS)] == 1 * MBPS
    assert rates[ClassKey(("a",))] == 4 * MBPS


def test_multi_bottleneck_flow_limited_by_tightest():
    capacities = {"a": 10 * MBPS, "b": 2 * MBPS}
    demands = {ClassKey(("a", "b")): 1, ClassKey(("a",)): 1}
    rates = solve_max_min(demands, capacities)
    assert rates[ClassKey(("a", "b"))] == 2 * MBPS
    assert rates[ClassKey(("a",))] == 8 * MBPS


def test_unknown_hops_are_uncongested():
    """Routes over undeclared bottlenecks are capped only by demand."""
    rates = solve_max_min(
        {ClassKey(("nowhere",), desired_bw=3 * MBPS): 1},
        {"a": 10 * MBPS})
    assert rates[ClassKey(("nowhere",), desired_bw=3 * MBPS)] == 3 * MBPS


# ----------------------------------------------------------------------
# Event-driven completion tracking
# ----------------------------------------------------------------------

def _world(capacity=10 * MBPS):
    sim = Simulator()
    fluid = FluidNetwork(sim)
    fluid.add_bottleneck("dl", capacity)
    return sim, fluid


def test_single_flow_completion_time():
    sim, fluid = _world()
    done = []
    fluid.start_flow(("dl",), 1_250_000, on_complete=done.append)
    sim.run(until=10.0)
    assert len(done) == 1
    # 10 Mbit of data over a 10 Mbit/s link: exactly one second.
    assert abs(done[0].duration - 1.0) < 1e-6
    assert fluid.stats.flows_completed == 1
    assert fluid.live_flows == 0


def test_processor_sharing_closed_loop():
    """N equal greedy users on one link each get 1/N: fct = N * solo."""
    sim, fluid = _world()
    rng = random.Random(1)
    loop = ClosedLoopUsers(sim, fluid, rng, [("dl",)],
                           make_size_sampler("fixed:bytes=125000"),
                           users=4, think_mean=0.0)
    loop.start()
    sim.run(until=10.0)
    stats = fluid.stats
    assert stats.peak_concurrent == 4
    assert abs(stats.mean_fct - 0.4) < 1e-6
    assert abs(stats.jain_index - 1.0) < 1e-9
    assert stats.flows_completed >= 90


def test_rate_change_mid_flight():
    """A second flow arriving halves the first flow's rate; the first
    finishes at 0.5s (full rate) + 0.5s-worth at half rate."""
    sim, fluid = _world()
    done = []
    fluid.start_flow(("dl",), 1_250_000, on_complete=done.append)
    sim.schedule(0.5, lambda: fluid.start_flow(
        ("dl",), 1_250_000, on_complete=done.append))
    sim.run(until=10.0)
    assert len(done) == 2
    # Flow 1: 5 Mbit alone in .5s, then 5 Mbit at 5 Mbit/s -> t=1.5.
    assert abs(done[0].duration - 1.5) < 1e-6
    # Flow 2: shares until 1.5 (5 Mbit moved), then full rate.
    assert abs(done[1].duration - 1.5) < 1e-6


def test_desired_bw_caps_rate():
    sim, fluid = _world()
    done = []
    fluid.start_flow(("dl",), 1_250_000, desired_bw=2 * MBPS,
                     on_complete=done.append)
    sim.run(until=10.0)
    assert abs(done[0].duration - 5.0) < 1e-6


def test_residual_pushed_to_link():
    """Background load lands on the bound Link as reduced capacity."""

    class FakeLink:
        def __init__(self):
            self.loads = []

        def set_fluid_load(self, load):
            self.loads.append(load)

    sim = Simulator()
    fluid = FluidNetwork(sim)
    link = FakeLink()
    fluid.add_bottleneck("dl", 10 * MBPS, link=link)
    fluid.start_flow(("dl",), 1_250_000)
    assert link.loads[-1] == 10 * MBPS
    sim.run(until=10.0)
    # After the flow drains the residual returns to the full link.
    assert link.loads[-1] == 0.0


def test_packet_flow_reserves_share_but_claims_no_load():
    """A pinned packet-level flow halves the background share yet its
    own (packet-carried) traffic is never pushed as fluid load."""

    class FakeLink:
        def __init__(self):
            self.loads = []

        def set_fluid_load(self, load):
            self.loads.append(load)

    sim = Simulator()
    fluid = FluidNetwork(sim)
    link = FakeLink()
    fluid.add_bottleneck("dl", 10 * MBPS, link=link)
    key = fluid.attach_packet_flow(("dl",))
    assert link.loads[-1] == 0.0
    done = []
    fluid.start_flow(("dl",), 1_250_000, on_complete=done.append)
    assert link.loads[-1] == 5 * MBPS  # bg gets half, fg keeps half
    sim.run(until=10.0)
    assert abs(done[0].duration - 2.0) < 1e-6
    fluid.detach_packet_flow(key)
    assert fluid.live_flows == 0


def test_zero_background_world_schedules_nothing():
    """The byte-identity precondition: topology + a pinned foreground
    flow must neither schedule events nor consume engine sequence
    numbers beyond the packet stack's own."""
    sim = Simulator()
    before = sim.events_scheduled
    fluid = FluidNetwork(sim)
    fluid.add_bottleneck("dl", 10 * MBPS)
    key = fluid.attach_packet_flow(("dl",))
    fluid.detach_packet_flow(key)
    assert sim.events_scheduled == before
    assert sim.pending() == 0


def test_poisson_arrivals_stop_when():
    """The stop predicate halts generation and lets the world drain."""
    sim = Simulator()
    fluid = FluidNetwork(sim)
    fluid.add_bottleneck("dl", 10 * MBPS)
    rng = random.Random(3)
    flag = {"stop": False}
    arrivals = PoissonArrivals(
        sim, fluid, rng, [("dl",)],
        make_size_sampler("fixed:bytes=65536"), rate=50.0,
        stop_when=lambda: flag["stop"])
    arrivals.start()
    sim.schedule(1.0, lambda: flag.update(stop=True))
    sim.run(until=60.0)
    # Generation stopped shortly after t=1, everything drained well
    # before the horizon, and nothing is left in the event queue.
    assert arrivals.stopped
    assert fluid.live_flows == 0
    assert sim.pending() == 0
    assert fluid.stats.last_completion_at < 10.0
    assert fluid.stats.flows_started == fluid.stats.flows_completed


def test_fluid_determinism_same_seed_same_story():
    def story(seed):
        sim = Simulator()
        fluid = FluidNetwork(sim)
        fluid.add_bottleneck("dl", 10 * MBPS)
        rng = random.Random(seed)
        PoissonArrivals(sim, fluid, rng, [("dl",)],
                        make_size_sampler("paper-split"),
                        rate=5.0).start()
        sim.run(until=20.0)
        return (fluid.stats.flows_started, fluid.stats.flows_completed,
                fluid.stats.bytes_completed, fluid.stats.sum_fct)

    assert story(11) == story(11)
    assert story(11) != story(12)

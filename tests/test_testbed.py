"""Tests for the testbed assembler."""

import pytest

from repro.testbed import (
    CLIENT_WIFI,
    SERVER_PRIMARY,
    SERVER_SECONDARY,
    Testbed,
    TestbedConfig,
)
from repro.wireless.profiles import TimeOfDay
from repro.wireless.rrc import RadioState


def test_default_testbed_layout():
    testbed = Testbed(TestbedConfig(seed=1))
    assert testbed.server_addrs == [SERVER_PRIMARY]
    assert testbed.client_addrs == [CLIENT_WIFI, "client.att"]
    assert set(testbed.client.interfaces) == {CLIENT_WIFI, "client.att"}
    assert set(testbed.server.interfaces) == {SERVER_PRIMARY}


def test_two_server_interfaces_for_four_paths():
    testbed = Testbed(TestbedConfig(seed=1, server_interfaces=2))
    assert testbed.server_addrs == [SERVER_PRIMARY, SERVER_SECONDARY]
    assert SERVER_SECONDARY in testbed.server.interfaces


def test_carrier_selects_cellular_interface():
    testbed = Testbed(TestbedConfig(seed=1, carrier="sprint"))
    assert testbed.cellular_addr == "client.sprint"
    assert "client.sprint" in testbed.client.interfaces


def test_config_validation():
    with pytest.raises(ValueError):
        TestbedConfig(carrier="tmobile")
    with pytest.raises(ValueError):
        TestbedConfig(wifi="mesh")
    with pytest.raises(ValueError):
        TestbedConfig(server_interfaces=3)


def test_radio_warm_by_default():
    testbed = Testbed(TestbedConfig(seed=1))
    radio = testbed.client.interfaces["client.att"].radio
    assert radio is not None
    assert radio.state is RadioState.CONNECTED


def test_cold_radio_when_requested():
    testbed = Testbed(TestbedConfig(seed=1, warm_radio=False))
    radio = testbed.client.interfaces["client.att"].radio
    assert radio.state is RadioState.IDLE


def test_nat_present_on_client_interfaces():
    testbed = Testbed(TestbedConfig(seed=1))
    assert testbed.client.interfaces[CLIENT_WIFI].nat is not None
    assert testbed.client.interfaces["client.att"].nat is not None
    assert testbed.server.interfaces[SERVER_PRIMARY].nat is None


def test_nat_disabled_when_requested():
    testbed = Testbed(TestbedConfig(seed=1, nat=False))
    assert testbed.client.interfaces[CLIENT_WIFI].nat is None


def test_environment_jitter_changes_profiles():
    plain = Testbed(TestbedConfig(seed=1, environment_jitter=False))
    jittered = Testbed(TestbedConfig(seed=1, environment_jitter=True))
    base = plain.applied_profiles[CLIENT_WIFI]
    shifted = jittered.applied_profiles[CLIENT_WIFI]
    assert shifted.down_rate != base.down_rate


def test_environment_jitter_deterministic_per_seed():
    a = Testbed(TestbedConfig(seed=4)).applied_profiles[CLIENT_WIFI]
    b = Testbed(TestbedConfig(seed=4)).applied_profiles[CLIENT_WIFI]
    assert a == b


def test_period_affects_wifi_environment():
    night = Testbed(TestbedConfig(seed=4, period=TimeOfDay.NIGHT))
    evening = Testbed(TestbedConfig(seed=4, period=TimeOfDay.EVENING))
    assert night.applied_profiles[CLIENT_WIFI] != \
        evening.applied_profiles[CLIENT_WIFI]


def test_wifi_flavor_applied():
    public = Testbed(TestbedConfig(seed=1, wifi="public",
                                   environment_jitter=False))
    home = Testbed(TestbedConfig(seed=1, wifi="home",
                                 environment_jitter=False))
    assert public.applied_profiles[CLIENT_WIFI].down_loss > \
        home.applied_profiles[CLIENT_WIFI].down_loss


def test_run_passthrough_advances_clock():
    testbed = Testbed(TestbedConfig(seed=1))
    testbed.sim.schedule(1.0, lambda: None)
    assert testbed.run(until=2.0) == 2.0


def test_nat_idle_timeout_wired_to_sim_clock():
    testbed = Testbed(TestbedConfig(seed=1, nat_idle_timeout=30.0))
    nat = testbed.client.interfaces[CLIENT_WIFI].nat
    assert nat.table.idle_timeout == 30.0
    # The NAT ages bindings against the simulation clock.
    assert nat.clock() == testbed.sim.now


def test_nat_default_has_no_idle_timeout():
    testbed = Testbed(TestbedConfig(seed=1))
    assert testbed.client.interfaces[CLIENT_WIFI].nat.table.idle_timeout \
        is None

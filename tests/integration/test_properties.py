"""Property-based and fuzz tests of system-level invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.link import Link, LinkConfig
from repro.netsim.packet import Packet
from repro.sim.engine import Simulator
from repro.tcp.segment import Segment

from tests.conftest import build_mininet, start_transfer


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=50))
def test_engine_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=30),
       st.data())
def test_engine_cancellation_is_exact(delays, data):
    sim = Simulator()
    fired = []
    events = [sim.schedule(delay, lambda i=i: fired.append(i))
              for i, delay in enumerate(delays)]
    to_cancel = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(delays) - 1)))
    for index in to_cancel:
        events[index].cancel()
    sim.run()
    assert set(fired) == set(range(len(delays))) - to_cancel


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31),
       st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
       st.integers(min_value=2_000, max_value=50_000))
def test_link_conserves_packets(seed, loss, buffer_kb):
    sim = Simulator()
    config = LinkConfig(rate_bps=5e6, prop_delay=0.005,
                        buffer_bytes=buffer_kb, loss_rate=loss)
    link = Link(sim, config, random.Random(seed))
    delivered = []
    link.deliver = delivered.append
    n = 150

    def feed(i=0):
        if i < n:
            link.send(Packet("a", "b", Segment(src_port=1, dst_port=2,
                                               payload_len=500)))
            sim.schedule(0.0005, lambda: feed(i + 1))

    feed()
    sim.run()
    stats = link.stats
    assert stats.packets_offered == n
    accounted = (len(delivered) + stats.drops_overflow + stats.drops_loss
                 + stats.drops_arq_residual + stats.drops_down)
    assert accounted == n


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31),
       st.floats(min_value=0.0, max_value=0.08, allow_nan=False),
       st.integers(min_value=1, max_value=300))
def test_tcp_delivers_exactly_once_under_random_loss(seed, loss,
                                                     size_kb):
    """The stream abstraction: every byte exactly once, in order,
    for any loss pattern that eventually lets packets through."""
    size = size_kb * 1024
    net = build_mininet(loss_rate=loss, seed=seed)
    harness = start_transfer(net, size=size)
    net.run(until=600.0)
    assert sum(harness.received) == size


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31),
       st.floats(min_value=0.3, max_value=3.0, allow_nan=False),
       st.floats(min_value=0.5, max_value=5.0, allow_nan=False))
def test_mptcp_delivers_exactly_once_through_outage(seed, down_at,
                                                    duration):
    """Reinjection + failover must never duplicate or drop stream
    bytes, whatever the outage timing."""
    from repro.app.http import HTTP_PORT, HttpClient, HttpServerSession
    from repro.core.connection import MptcpConfig, MptcpConnection, \
        MptcpListener
    from repro.testbed import Testbed, TestbedConfig
    from repro.wireless.mobility import InterfaceOutage

    size = 1024 * 1024
    testbed = Testbed(TestbedConfig(seed=seed % 1000))
    config = MptcpConfig()
    MptcpListener(testbed.sim, testbed.server, HTTP_PORT, config,
                  server_addrs=testbed.server_addrs,
                  on_connection=lambda c: HttpServerSession.fixed(c, size))
    connection = MptcpConnection.client(
        testbed.sim, testbed.client, testbed.client_addrs,
        testbed.server_addrs[0], HTTP_PORT, config)
    client = HttpClient(testbed.sim, connection, size)
    client.start()
    connection.connect()
    outage = InterfaceOutage(testbed.sim,
                             testbed.client.interfaces["client.wifi"])
    outage.schedule(down_at=down_at, up_at=down_at + duration)
    manager = connection.path_manager
    outage.on_down.append(lambda: manager.on_interface_down("client.wifi"))
    outage.on_up.append(lambda: manager.on_interface_up("client.wifi"))
    testbed.run(until=240.0)
    assert client.record.complete
    assert connection.receive_buffer.metrics.delivered_bytes == size


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31))
def test_mptcp_deterministic_under_seed(seed):
    from repro.experiments.config import FlowSpec
    from repro.experiments.runner import Measurement

    spec = FlowSpec.mptcp(carrier="att")
    a = Measurement(spec, 128 * 1024, seed=seed % 10_000).run()
    b = Measurement(spec, 128 * 1024, seed=seed % 10_000).run()
    assert a.download_time == b.download_time

"""Integration tests asserting the paper's headline findings hold in
the reproduction.

Each test runs a handful of measurements (seconds of wall time) and
checks the *qualitative* claim -- orderings and trends, not absolute
numbers.  These are the guardrails that keep recalibration honest.
"""

import statistics


from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement
from repro.experiments.stats import ccdf_fraction_above

KB = 1024
MB = 1024 * 1024

SEEDS = (11, 22, 33)


def mean_time(spec, size, seeds=SEEDS):
    times = [Measurement(spec, size, seed=seed).run().download_time
             for seed in seeds]
    assert all(t is not None for t in times)
    return statistics.mean(times)


def mean_metric(spec, size, metric, seeds=SEEDS):
    values = []
    for seed in seeds:
        result = Measurement(spec, size, seed=seed).run()
        assert result.completed
        values.append(metric(result))
    return statistics.mean(values)


def test_small_flows_wifi_wins_and_mptcp_tracks_it():
    """Section 4: for <=64 KB, SP-WiFi is best (lower RTT) and MPTCP
    performs like SP-WiFi, not like the cellular path."""
    wifi = mean_time(FlowSpec.single_path("wifi"), 8 * KB)
    att = mean_time(FlowSpec.single_path("cell", carrier="att"), 8 * KB)
    mptcp = mean_time(FlowSpec.mptcp(carrier="att"), 8 * KB)
    assert wifi < att
    assert mptcp < att
    assert mptcp <= wifi * 1.35


def test_large_flows_lte_beats_wifi_and_mptcp_beats_both():
    """Section 4.2: for large transfers the (loss-free) LTE path beats
    the lossy WiFi path, and MPTCP outperforms the best single path."""
    wifi = mean_time(FlowSpec.single_path("wifi"), 16 * MB)
    att = mean_time(FlowSpec.single_path("cell", carrier="att"), 16 * MB)
    mptcp = mean_time(FlowSpec.mptcp(carrier="att"), 16 * MB)
    assert att < wifi
    assert mptcp < att * 1.05


def test_mptcp_robust_even_with_3g():
    """MPTCP with Sprint 3G stays close to the best path (WiFi)."""
    wifi = mean_time(FlowSpec.single_path("wifi"), 2 * MB)
    sprint = mean_time(FlowSpec.single_path("cell", carrier="sprint"),
                       2 * MB)
    mptcp = mean_time(FlowSpec.mptcp(carrier="sprint"), 2 * MB)
    assert wifi < sprint
    assert mptcp < sprint
    assert mptcp < wifi * 1.6


def test_cellular_fraction_grows_with_file_size():
    """Figures 3/5/10: traffic offloads to cellular as size grows,
    exceeding 50% for multi-MB transfers."""
    spec = FlowSpec.mptcp(carrier="att")
    fraction = {
        size: mean_metric(spec, size,
                          lambda r: r.metrics.cellular_fraction)
        for size in (64 * KB, 512 * KB, 4 * MB)}
    assert fraction[64 * KB] < 0.25
    assert fraction[64 * KB] <= fraction[512 * KB] <= fraction[4 * MB]
    assert fraction[4 * MB] > 0.5


def test_tiny_transfers_never_use_cellular():
    """Figure 5: at 8 KB the transfer finishes before the JOIN can
    contribute."""
    fraction = mean_metric(FlowSpec.mptcp(carrier="att"), 8 * KB,
                           lambda r: r.metrics.cellular_fraction)
    assert fraction < 0.05


def test_four_paths_beat_two_paths():
    """Figures 4/9: MP-4 outperforms MP-2 (more slow starts, pooling)."""
    for size in (512 * KB, 8 * MB):
        two = mean_time(FlowSpec.mptcp(carrier="att", paths=2), size)
        four = mean_time(FlowSpec.mptcp(carrier="att", paths=4), size)
        assert four < two * 1.1, f"MP-4 should not lose at {size}"


def test_wifi_lossier_but_faster_than_lte():
    """Table 2 orderings: WiFi loss >> LTE loss; WiFi RTT << LTE RTT."""
    wifi_run = Measurement(FlowSpec.single_path("wifi"), 2 * MB,
                           seed=7).run()
    att_run = Measurement(FlowSpec.single_path("cell", carrier="att"),
                          2 * MB, seed=7).run()
    assert wifi_run.metrics.loss_rate("wifi") > \
        att_run.metrics.loss_rate("att") + 0.005
    assert wifi_run.metrics.mean_rtt("wifi") < \
        att_run.metrics.mean_rtt("att")


def test_cellular_rtt_inflates_with_flow_size():
    """Section 5.1 (bufferbloat): per-connection mean RTT grows with
    transfer size on cellular, stays flat on WiFi."""
    att = FlowSpec.single_path("cell", carrier="att")
    small = mean_metric(att, 64 * KB, lambda r: r.metrics.mean_rtt("att"))
    large = mean_metric(att, 16 * MB, lambda r: r.metrics.mean_rtt("att"))
    assert large > small * 1.15
    wifi = FlowSpec.single_path("wifi")
    wifi_small = mean_metric(wifi, 64 * KB,
                             lambda r: r.metrics.mean_rtt("wifi"))
    wifi_large = mean_metric(wifi, 16 * MB,
                             lambda r: r.metrics.mean_rtt("wifi"))
    assert wifi_large < wifi_small * 2.0


def test_rtt_ordering_sprint_worst_wifi_best():
    """Figure 12: RTT distributions order WiFi < AT&T < Sprint."""
    size = 4 * MB
    rtts = {}
    for carrier in ("att", "sprint"):
        spec = FlowSpec.single_path("cell", carrier=carrier)
        rtts[carrier] = mean_metric(
            spec, size, lambda r, c=carrier: r.metrics.mean_rtt(c))
    wifi_rtt = mean_metric(FlowSpec.single_path("wifi"), size,
                           lambda r: r.metrics.mean_rtt("wifi"))
    assert wifi_rtt < rtts["att"] < rtts["sprint"]


def test_sprint_mptcp_has_worst_reordering():
    """Figure 13 / Table 6: the 3G+WiFi pairing reorders far more than
    LTE+WiFi, with a heavy >150 ms tail."""
    size = 8 * MB

    def ofo_above_150ms(result):
        return ccdf_fraction_above(result.metrics.ofo_delays, 0.150)

    att = mean_metric(FlowSpec.mptcp(carrier="att"), size,
                      ofo_above_150ms)
    sprint = mean_metric(FlowSpec.mptcp(carrier="sprint"), size,
                         ofo_above_150ms)
    assert sprint > att
    assert sprint > 0.05


def test_simultaneous_syn_helps_midsize_flows():
    """Figure 8: simultaneous SYN reduces mid-size download times."""
    delayed = FlowSpec.mptcp(carrier="att")
    simultaneous = delayed.with_(simultaneous_syn=True)
    seeds = tuple(range(40, 52))
    d = mean_time(delayed, 512 * KB, seeds=seeds)
    s = mean_time(simultaneous, 512 * KB, seeds=seeds)
    assert s <= d * 1.02  # at worst a wash, typically a real win


def test_public_wifi_makes_cellular_more_attractive():
    """Figures 6/7: on a loaded hotspot, MPTCP leans on cellular more
    than it does on home WiFi."""
    size = 512 * KB
    home = mean_metric(FlowSpec.mptcp(carrier="att", wifi="home"), size,
                       lambda r: r.metrics.cellular_fraction)
    public = mean_metric(FlowSpec.mptcp(carrier="att", wifi="public"),
                         size, lambda r: r.metrics.cellular_fraction)
    assert public > home

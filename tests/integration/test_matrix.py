"""Configuration-matrix sweep: every transport x environment completes.

A cheap guard that no corner of the configuration space (carrier x
WiFi flavor x mode x controller x paths) deadlocks, crashes, or leaks
obviously wrong metrics.  Uses small objects so the whole sweep stays
fast.
"""

import pytest

from repro.experiments.config import FlowSpec
from repro.experiments.runner import Measurement
from repro.wireless.profiles import TimeOfDay

KB = 1024
SIZE = 96 * KB


def check(result):
    assert result.completed, f"{result.spec.label} did not complete"
    assert result.download_time is not None and result.download_time > 0
    assert result.metrics.bytes_received >= SIZE
    assert 0.0 <= result.metrics.cellular_fraction <= 1.0
    for path, analysis in result.metrics.per_path.items():
        assert 0.0 <= analysis.loss_rate <= 1.0
        if analysis.rtt_samples:
            assert all(0.0 < rtt < 30.0 for rtt in analysis.rtt_samples)


@pytest.mark.parametrize("carrier", ["att", "verizon", "sprint"])
@pytest.mark.parametrize("wifi", ["home", "public"])
def test_single_path_cell_matrix(carrier, wifi):
    spec = FlowSpec.single_path("cell", carrier=carrier, wifi=wifi)
    check(Measurement(spec, SIZE, seed=51).run())


@pytest.mark.parametrize("wifi", ["home", "public"])
def test_single_path_wifi_matrix(wifi):
    spec = FlowSpec.single_path("wifi", wifi=wifi)
    check(Measurement(spec, SIZE, seed=51).run())


@pytest.mark.parametrize("carrier", ["att", "verizon", "sprint"])
@pytest.mark.parametrize("controller", ["reno", "coupled", "olia"])
def test_mptcp_controller_matrix(carrier, controller):
    spec = FlowSpec.mptcp(carrier=carrier, controller=controller)
    check(Measurement(spec, SIZE, seed=51).run())


@pytest.mark.parametrize("carrier", ["att", "sprint"])
@pytest.mark.parametrize("paths", [2, 4])
def test_mptcp_path_count_matrix(carrier, paths):
    spec = FlowSpec.mptcp(carrier=carrier, paths=paths)
    result = Measurement(spec, SIZE, seed=51).run()
    check(result)
    assert result.subflow_count == paths


@pytest.mark.parametrize("scheduler", ["minrtt", "roundrobin",
                                       "redundant"])
def test_mptcp_scheduler_matrix(scheduler):
    spec = FlowSpec.mptcp(carrier="att", scheduler=scheduler)
    check(Measurement(spec, SIZE, seed=51).run())


@pytest.mark.parametrize("period", list(TimeOfDay))
def test_period_matrix(period):
    spec = FlowSpec.mptcp(carrier="att")
    result = Measurement(spec, SIZE, seed=51, period=period).run()
    check(result)


@pytest.mark.parametrize("simultaneous", [False, True])
def test_syn_mode_matrix(simultaneous):
    spec = FlowSpec.mptcp(carrier="verizon",
                          simultaneous_syn=simultaneous)
    check(Measurement(spec, SIZE, seed=51).run())


def test_penalization_path_runs():
    spec = FlowSpec.mptcp(carrier="sprint", penalization=True,
                          rcv_buffer=256 * KB)
    check(Measurement(spec, SIZE, seed=51).run())

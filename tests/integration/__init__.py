"""Test package."""
